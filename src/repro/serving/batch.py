"""Stacked batched CAQR: many independent same-shape QRs in one pass.

:func:`repro.core.caqr._caqr_serial` factors one matrix by batching the
compact-WY work *across tree nodes*.  This module folds a second axis
into those same kernels — ``requests``: ``r`` independent ``(m, n)``
problems are stacked into an ``(r, m, n)`` array and every level-0
factorization, tree combine, trailing update and Q application runs as
one gufunc/GEMM call over ``r * nodes`` slices instead of ``nodes``
slices ``r`` times.

**Bit-identity.**  Every kernel involved — the stacked-QR gufunc behind
:func:`repro.smallblas.wy.geqr2_wy`, :func:`~repro.smallblas.wy.larft`,
and the three batched GEMMs of :func:`~repro.smallblas.wy.apply_wy` —
computes each batch slice independently and deterministically, so slice
``i`` of the stacked result equals what ``QRPlan.factor`` produces for
request ``i`` alone, bit for bit.  The serving tests pin this; it is the
contract that lets the coalescer merge tenants' requests without
changing anyone's answer.

**Why a plan object.**  At serving shapes (hundreds of rows, tens of
columns) the per-batch Python work — building the reduction tree,
row-index maps for the scatter/gather levels, boolean triangle masks —
costs as much as the GEMMs.  :class:`ServingPlan` computes all of it
once per ``(m, n, dtype, policy)`` and the per-batch path touches only
arrays.  The input staging buffer is pooled on the plan (the server's
single worker thread is the only executor), so a steady-state batch
performs no large allocations beyond its own ``Q``/``R`` outputs.
"""

from __future__ import annotations

import numpy as np

from repro.core.tree import batch_level, build_tree
from repro.core.tsqr import row_blocks
from repro.runtime.policy import ExecutionPolicy
from repro.smallblas.wy import apply_wy, geqr2_wy

__all__ = ["ServingPlan", "stacked_qr"]

# apply_wy chunk bound for serving stacks.  The coalescer's trailing
# updates are many small tiles (not paper-scale panels), so fewer,
# larger GEMM dispatches beat keeping each chunk cache-resident; the
# results are bitwise identical across chunk settings (the chunk splits
# the batch axis only).
SERVING_CHUNK_ELEMS = 1 << 19


def _r_from_h(h, kk, rmask):
    """Upper-triangular ``(b, kk, pw)`` R block from the raw packed factor."""
    Rt = h[:, :, :kk].transpose(0, 2, 1)
    return np.where(rmask, Rt, 0.0)


class _PanelPlan:
    """Shape-only metadata for one panel's TSQR: blocks, tree, masks."""

    __slots__ = (
        "c0", "pw", "r0", "hp", "ranges", "l0", "eff_h", "tail_se",
        "k0", "vmask0", "rmask0", "vmask_tail", "rmask_tail", "levels",
    )

    def __init__(self, c0: int, pw: int, hp: int, block_rows: int, tree_shape: str):
        self.c0, self.pw, self.r0, self.hp = c0, pw, c0, hp
        bh = max(block_rows, pw)
        self.ranges = row_blocks(hp, bh)
        nb = len(self.ranges)
        h_last = self.ranges[-1][1] - self.ranges[-1][0]
        ragged = nb > 1 and h_last != bh
        self.l0 = nb - 1 if ragged else nb
        self.eff_h = hp if nb == 1 else bh
        self.tail_se = self.ranges[-1] if ragged else None
        self.k0 = min(self.eff_h, pw)
        self.vmask0 = np.tri(self.eff_h, self.k0, -1, dtype=bool)
        self.rmask0 = ~np.tri(self.k0, pw, -1, dtype=bool)
        self.vmask_tail = self.rmask_tail = None
        if ragged:
            kl = min(h_last, pw)
            self.vmask_tail = np.tri(h_last, kl, -1, dtype=bool)
            self.rmask_tail = ~np.tri(kl, pw, -1, dtype=bool)
        starts = [rg[0] for rg in self.ranges]
        # The tree's group structure, gather maps and triangle masks are
        # pure functions of the block heights — precompute every level.
        heights = {
            i: min(e - s, pw) for i, (s, e) in enumerate(self.ranges)
        }
        tree = build_tree(nb, tree_shape)
        self.levels = []
        for level in tree.levels:
            entries = []
            sig_batches = batch_level(
                level, key=lambda grp: tuple(heights[i] for i in grp)
            )
            for sig, poss in sig_batches.items():
                groups = [level[p] for p in poss]
                H = sum(sig)
                kt = min(H, pw)
                rowidx = np.stack([
                    np.concatenate([
                        np.arange(starts[i], starts[i] + h, dtype=np.intp)
                        for i, h in zip(grp, sig)
                    ])
                    for grp in groups
                ])
                offs = []
                pos = 0
                for h in sig:
                    offs.append((pos, pos + h))
                    pos += h
                entries.append((
                    groups, offs, len(groups), H, kt, rowidx,
                    np.tri(H, kt, -1, dtype=bool),
                    ~np.tri(kt, pw, -1, dtype=bool),
                ))
                for grp in groups:
                    heights[grp[0]] = kt
                    for dead in grp[1:]:
                        del heights[dead]
            self.levels.append(entries)


class ServingPlan:
    """Reusable stacked-execution plan for one ``(m, n, dtype, policy)``.

    Built once per shape by the server's worker thread and cached; not
    thread-safe (the pooled staging buffer assumes a single executor).
    """

    def __init__(self, m: int, n: int, dtype, policy: ExecutionPolicy):
        if policy.path != "batched":
            raise ValueError(
                f"ServingPlan implements the 'batched' path arithmetic, "
                f"got path={policy.path!r}"
            )
        self.m, self.n = m, n
        self.dtype = np.dtype(dtype)
        self.policy = policy
        self.k = min(m, n)
        self.panels = [
            _PanelPlan(
                c0,
                min(policy.panel_width, self.k - c0),
                m - c0,
                policy.block_rows,
                policy.tree_shape,
            )
            for c0 in range(0, self.k, policy.panel_width)
        ]
        self._diag = np.arange(self.k)
        self._staging: np.ndarray | None = None

    def staging(self, r: int) -> np.ndarray:
        """Pooled ``(r, m, n)`` input buffer, grown to the high-water mark."""
        buf = self._staging
        if buf is None or buf.shape[0] < r:
            buf = self._staging = np.empty((r, self.m, self.n), dtype=self.dtype)
        return buf[:r]

    def factor_stack(self, W: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Factor the owned, mutable ``(r, m, n)`` stack ``W`` in place.

        Returns ``(Q, R)`` stacks, slice ``i`` bit-identical to the
        per-request batched path on ``W[i]``.
        """
        r = W.shape[0]
        k = self.k
        applied = []
        for pp in self.panels:
            panel = W[:, pp.r0:, pp.c0:pp.c0 + pp.pw]
            factors = _factor_panel(panel, pp, r)
            trailing = W[:, pp.r0:, pp.c0 + pp.pw:]
            if trailing.size:
                _apply_stacked(factors, trailing, transpose=True)
            Rp = factors["R"]
            rh = Rp.shape[1]
            W[:, pp.r0:pp.r0 + rh, pp.c0:pp.c0 + pp.pw] = Rp
            W[:, pp.r0 + rh:, pp.c0:pp.c0 + pp.pw] = 0.0
            applied.append((pp, factors))
        R = np.triu(W[:, :k, :])
        Q = np.zeros((r, self.m, k), dtype=W.dtype)
        Q[:, self._diag, self._diag] = 1.0
        for pp, factors in reversed(applied):
            _apply_stacked(factors, Q[:, pp.r0:, :], transpose=False)
        return Q, R


def stacked_qr(mats, plan: ServingPlan) -> tuple[np.ndarray, np.ndarray]:
    """Convenience wrapper: stage ``mats`` into the pooled buffer and factor."""
    W = plan.staging(len(mats))
    for i, a in enumerate(mats):
        np.copyto(W[i], a)
    return plan.factor_stack(W)


def _factor_panel(panel, pp: _PanelPlan, r: int) -> dict:
    """Stacked TSQR of one panel: level-0 batch, ragged tail, tree levels."""
    pw = pp.pw
    if len(pp.ranges) == 1:
        batch0 = panel
    else:
        # A strided view whenever the (requests, blocks) axes merge
        # cleanly; np.linalg.qr copies internally either way.
        batch0 = panel[:, : pp.l0 * pp.eff_h, :].reshape(r * pp.l0, pp.eff_h, pw)
    V0, T0, h0 = geqr2_wy(batch0, pp.vmask0)
    current = {}
    R0 = _r_from_h(h0, pp.k0, pp.rmask0).reshape(r, pp.l0, pp.k0, pw)
    for i in range(pp.l0):
        current[i] = R0[:, i]
    tail = None
    if pp.tail_se is not None:
        s, e = pp.tail_se
        Vl, Tl, hl = geqr2_wy(panel[:, s:e, :], pp.vmask_tail)
        current[len(pp.ranges) - 1] = _r_from_h(
            hl, pp.vmask_tail.shape[1], pp.rmask_tail
        )
        tail = (s, e - s, Vl, Tl)
    levels = []
    for entries in pp.levels:
        lvl = []
        for groups, offs, g, H, kt, rowidx, vmask, rmask in entries:
            stacked = np.empty((r, g, H, pw), dtype=panel.dtype)
            for gi, grp in enumerate(groups):
                for i, (o0, o1) in zip(grp, offs):
                    stacked[:, gi, o0:o1] = current[i]
            Vt, Tt, ht = geqr2_wy(stacked.reshape(r * g, H, pw), vmask)
            Rt = _r_from_h(ht, kt, rmask).reshape(r, g, kt, pw)
            lvl.append((rowidx, Vt, Tt, g))
            for gi, grp in enumerate(groups):
                current[grp[0]] = Rt[:, gi]
                for dead in grp[1:]:
                    del current[dead]
        levels.append(lvl)
    (surv,) = current
    Rtop = current[surv]
    kk = min(pp.hp, pw)
    if Rtop.shape[1] < kk:
        pad = np.zeros((r, kk - Rtop.shape[1], pw), dtype=Rtop.dtype)
        Rtop = np.concatenate([Rtop, pad], axis=1)
    return {"l0": (pp.l0, pp.eff_h, V0, T0), "tail": tail, "levels": levels,
            "R": Rtop[:, :kk]}


def _apply_stacked(factors: dict, B: np.ndarray, transpose: bool) -> None:
    """Apply the panel's implicit Q (or Q^T) to the ``(r, h, w)`` view ``B``."""
    if transpose:
        _apply_l0(factors, B, True)
        for lvl in factors["levels"]:
            _apply_level(lvl, B, True)
    else:
        for lvl in reversed(factors["levels"]):
            _apply_level(lvl, B, False)
        _apply_l0(factors, B, False)


def _apply_l0(factors: dict, B: np.ndarray, transpose: bool) -> None:
    r, _, w = B.shape
    l0, bh, V, T = factors["l0"]
    if l0:
        seg = B[:, : l0 * bh, :]
        flat = seg.reshape(r * l0, bh, w)
        if np.shares_memory(flat, B):
            # GEMM reads/writes through the strided view: no copies.
            apply_wy(V, T, flat, transpose=transpose,
                     chunk_elems=SERVING_CHUNK_ELEMS)
        else:
            tiles = np.ascontiguousarray(seg).reshape(r * l0, bh, w)
            apply_wy(V, T, tiles, transpose=transpose,
                     chunk_elems=SERVING_CHUNK_ELEMS)
            seg[:] = tiles.reshape(r, l0 * bh, w)
    if factors["tail"] is not None:
        s, h, Vl, Tl = factors["tail"]
        apply_wy(Vl, Tl, B[:, s:s + h, :], transpose=transpose,
                 chunk_elems=SERVING_CHUNK_ELEMS)


def _apply_level(lvl: list, B: np.ndarray, transpose: bool) -> None:
    r, _, w = B.shape
    for rowidx, V, T, g in lvl:
        H = rowidx.shape[1]
        sub = B[:, rowidx, :]  # gather: (r, g, H, w)
        flat = sub.reshape(r * g, H, w)
        apply_wy(V, T, flat, transpose=transpose,
                 chunk_elems=SERVING_CHUNK_ELEMS)
        B[:, rowidx, :] = flat.reshape(r, g, H, w)
