"""Multi-tenant QR serving: request coalescing over the dispatcher.

The paper's core move — amortize per-launch overhead by batching many
small factorizations into few BLAS3 calls — applies to independent
*requests* exactly as it does to tree nodes.  This package is the
request-side half: an async front end (:class:`QRServer`) that admits
concurrent QR requests through a bounded queue, merges same-shape
windows into single stacked batched invocations
(:mod:`repro.serving.batch`), and degrades gracefully to per-request
dispatch for everything that cannot stack.  Per-request results are
bit-identical to uncoalesced ``QRDispatcher.qr``.

See ``docs/serving.md`` for the queueing model, window semantics and the
degradation ladder; ``examples/qr_serving.py`` for a worked example;
``python -m repro serve-bench`` for the load generator.
"""

from .batch import ServingPlan, stacked_qr
from .coalesce import CoalescingQueue
from .errors import QueueFullError, ServerClosedError, ServingError
from .loadgen import LoadReport, format_report, run_load
from .server import QRServer, ServingStats

__all__ = [
    "CoalescingQueue",
    "LoadReport",
    "QRServer",
    "QueueFullError",
    "ServerClosedError",
    "ServingError",
    "ServingPlan",
    "ServingStats",
    "format_report",
    "run_load",
    "stacked_qr",
]
