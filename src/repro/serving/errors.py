"""Typed errors of the serving front end.

Backpressure and lifecycle failures must be *catchable by type*: a load
balancer that sees :class:`QueueFullError` should retry elsewhere or
shed load, while a :class:`ServerClosedError` means the process is
draining and the request should be re-routed, not retried here.  Both
derive from :class:`ServingError` so callers can fence the whole
serving surface with one except clause.
"""

from __future__ import annotations

__all__ = ["ServingError", "QueueFullError", "ServerClosedError"]


class ServingError(RuntimeError):
    """Base class for serving-layer failures (never numerics errors)."""


class QueueFullError(ServingError):
    """The admission queue is at its depth bound.

    Raised synchronously from ``submit`` under ``overflow="reject"``;
    delivered through the *shed request's* future under
    ``overflow="shed"`` (the newest request is admitted, the oldest
    waiting one is dropped and fails with this error).
    """

    def __init__(self, message: str, *, depth: int, shed: bool = False):
        super().__init__(message)
        self.depth = depth
        self.shed = shed


class ServerClosedError(ServingError):
    """The server is closed (or closing) and admits no new requests."""
