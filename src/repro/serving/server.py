"""Async multi-tenant QR serving on top of the thread-safe dispatcher.

``QRServer.submit`` accepts a matrix from any thread and returns a
``concurrent.futures.Future``; a single worker thread drains the bounded
:class:`~repro.serving.coalesce.CoalescingQueue` in time/size windows,
groups the window's requests by ``(m, n, dtype, policy)`` and executes
each group as far up the *degradation ladder* as it qualifies:

1. **Coalesced** — two or more same-key requests under a ``batched``-path
   policy with ``coalesce=True``: stacked into one ``(r, m, n)`` array
   and factored by :class:`~repro.serving.batch.ServingPlan` in a single
   batched compact-WY pass.  Per-request results are bit-identical to
   uncoalesced ``QRDispatcher.qr`` (see :mod:`repro.serving.batch`), so
   coalescing is invisible to tenants except as throughput.
2. **Shared plan** — same-key requests that cannot stack (a custom
   non-``batched`` policy, e.g. a CholeskyQR2 path): one
   ``plan_qr``/predict per group, then per-request ``plan.factor``.
   This amortizes dispatch/planning overhead but not kernel launches.
   CholeskyQR2 groups stop here *by design*: their Gram stage runs as a
   single ``syrk`` whose accumulation order differs from a stacked
   GEMM's, so a stacked variant could not keep the bit-identity promise.
3. **Per-request** — singletons, oversize shapes, non-``caqr`` engine
   choices, non-finite inputs: straight through ``QRDispatcher.qr``,
   exactly as if no server existed.

Failures stay request-scoped: a non-finite matrix fails *its* future
with the same error the dispatcher raises, never the batch.
Backpressure is typed (:class:`~repro.serving.errors.QueueFullError`,
:class:`~repro.serving.errors.ServerClosedError`) so callers can tell
overload from bad input.

Every completion emits a ``serving.request`` obs span carrying the
tenant label, queue latency and execution rung, so a per-tenant latency
breakdown falls out of the standard :mod:`repro.obs` capture (see
:func:`repro.obs.tenant_summary`).
"""

from __future__ import annotations

import threading
from collections import OrderedDict, defaultdict
from concurrent.futures import Future
from dataclasses import dataclass, field
from time import monotonic
from typing import Any

import numpy as np

from repro.dispatch import DispatchedQR, QRDispatcher
from repro.obs import tracer as _obs
from repro.runtime import ExecutionPolicy, plan_qr
from repro.verify.guards import validate_matrix

from .batch import ServingPlan
from .coalesce import CoalescingQueue
from .errors import QueueFullError, ServerClosedError

__all__ = ["QRServer", "ServingStats"]

# Problems past this element count leave the small-to-medium regime the
# coalescer targets; one request already fills the BLAS3 kernels, so
# stacking only adds staging-buffer pressure.
DEFAULT_MAX_COALESCE_ELEMS = 1 << 18  # 512 x 512


@dataclass
class ServingStats:
    """Monotonic counters describing one server's traffic so far."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    shed: int = 0
    coalesced_requests: int = 0
    coalesced_batches: int = 0
    shared_plan_requests: int = 0
    per_request: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(self.__dict__)


@dataclass
class _Pending:
    """One admitted request waiting for (or in) execution."""

    A: np.ndarray
    tenant: str
    policy: ExecutionPolicy | None
    future: Future = field(default_factory=Future)
    t_submit: float = field(default_factory=monotonic)

    @property
    def key(self) -> tuple:
        return (self.A.shape[0], self.A.shape[1], self.A.dtype.str, self.policy)


class QRServer:
    """Coalescing front end over one (thread-safe) :class:`QRDispatcher`.

    Args:
        dispatcher: the dispatcher to serve (default: a fresh one with
            the reference policy).
        max_batch: coalescing window size bound — at most this many
            requests execute per window.
        max_wait_ms: coalescing window time bound — once the first
            request of a window is taken, at most this long is spent
            waiting for the batch to fill.  The worst-case latency tax a
            lone request pays for batching.
        max_depth: admission bound on *waiting* requests; beyond it,
            ``overflow`` applies.
        overflow: ``"reject"`` (raise :class:`QueueFullError` at submit)
            or ``"shed"`` (admit the new request, fail the oldest
            waiting one with a ``shed`` :class:`QueueFullError`).
        max_coalesce_elems: per-problem size ceiling (``m * n``) for the
            stacked path; bigger problems go per-request.
    """

    def __init__(
        self,
        dispatcher: QRDispatcher | None = None,
        *,
        max_batch: int = 96,
        max_wait_ms: float = 2.0,
        max_depth: int = 256,
        overflow: str = "reject",
        max_coalesce_elems: int = DEFAULT_MAX_COALESCE_ELEMS,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        self._dispatcher = dispatcher if dispatcher is not None else QRDispatcher()
        self.max_batch = max_batch
        self.max_wait = max_wait_ms / 1e3
        self.max_coalesce_elems = max_coalesce_elems
        self._queue = CoalescingQueue(max_depth=max_depth, overflow=overflow)
        # Worker-thread-only LRU caches: stacked serving plans and the
        # QRPlans of custom-policy groups.  No lock — only _run touches
        # them (the dispatcher's own caches are the shared, sharded ones).
        self._stack_plans: OrderedDict[tuple, ServingPlan] = OrderedDict()
        self._policy_plans: OrderedDict[tuple, Any] = OrderedDict()
        self._plan_cache_size = 32
        self._stats = ServingStats()
        self._stats_lock = threading.Lock()
        self._closed = False
        self._worker = threading.Thread(
            target=self._run, name="qr-server", daemon=True
        )
        self._worker.start()

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "QRServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self, wait: bool = True) -> None:
        """Stop admissions; drain (``wait=True``) or abort pending work."""
        self._closed = True
        if not wait:
            drained = self._queue.drain()
            self._count(submitted=len(drained))
            for req in drained:
                self._fail(req, ServerClosedError("server closed before execution"))
        self._queue.close()
        self._worker.join()

    @property
    def closed(self) -> bool:
        return self._closed

    def stats(self) -> ServingStats:
        with self._stats_lock:
            return ServingStats(**self._stats.as_dict())

    def _count(self, **deltas: int) -> None:
        with self._stats_lock:
            for name, d in deltas.items():
                setattr(self._stats, name, getattr(self._stats, name) + d)

    # -- submission --------------------------------------------------------

    def submit(
        self,
        A: np.ndarray,
        *,
        tenant: str = "default",
        policy: ExecutionPolicy | None = None,
    ) -> Future:
        """Admit one QR request; returns a future of ``DispatchedQR``.

        Malformed input (non-2-D, complex) raises synchronously, exactly
        like ``QRDispatcher.qr`` would.  Non-finite entries are detected
        at execution (batched over the window) and fail the request's
        future with the dispatcher's own error.  ``policy=None`` serves
        the dispatcher's policy; an explicit policy is honored
        per-request and only ever coalesced with requests carrying an
        equal policy.
        """
        if self._closed:
            raise ServerClosedError("server is closed")
        # Shape/dtype normalization up front (cheap, no data scan); the
        # finite-ness scan is deferred to the batch.
        A = validate_matrix(A, where="QRServer.submit", nonfinite="propagate")
        req = _Pending(A=A, tenant=tenant, policy=policy)
        try:
            shed = self._queue.put(req)
        except QueueFullError:
            self._count(rejected=1)
            _obs.counters(serving_rejected=1)
            raise
        if shed is not None:
            self._count(shed=1)
            _obs.counters(serving_shed=1)
            self._fail(
                shed,
                QueueFullError(
                    "request shed by a newer arrival (overflow='shed')",
                    depth=self._queue.max_depth,
                    shed=True,
                ),
            )
        # ``submitted`` is tallied by the worker (one stats-lock hit per
        # window, not per request): at coalesced throughput a per-submit
        # lock acquisition here measurably taxes the producer threads.
        return req.future

    def qr_many(
        self, mats, *, tenant: str = "default",
        policy: ExecutionPolicy | None = None,
    ) -> list[DispatchedQR]:
        """Submit a sequence and wait for all results (order preserved)."""
        futures = [self.submit(A, tenant=tenant, policy=policy) for A in mats]
        return [f.result() for f in futures]

    # -- worker ------------------------------------------------------------

    def _run(self) -> None:
        while True:
            batch = self._queue.get_batch(self.max_batch, self.max_wait)
            if batch is None:
                return
            self._count(submitted=len(batch))
            groups: dict[tuple, list[_Pending]] = defaultdict(list)
            for req in batch:
                groups[req.key].append(req)
            with _obs.span(
                "serving.window", cat="serving",
                requests=len(batch), groups=len(groups),
            ):
                for key, reqs in groups.items():
                    try:
                        self._execute_group(key, reqs)
                    except Exception as exc:  # defensive: never kill the loop
                        for req in reqs:
                            if not req.future.done():
                                self._fail(req, exc)

    def _execute_group(self, key: tuple, reqs: list[_Pending]) -> None:
        m, n, dtstr, policy = key
        pol = policy if policy is not None else self._dispatcher.policy
        if self._stack_eligible(m, n, dtstr, policy, pol, len(reqs)):
            if self._execute_stacked(m, n, dtstr, policy, pol, reqs):
                return
        if policy is not None:
            self._execute_shared_plan(m, n, dtstr, policy, reqs)
            return
        for req in reqs:
            self._execute_one(req)

    def _stack_eligible(
        self, m: int, n: int, dtstr: str, policy, pol, count: int
    ) -> bool:
        if count < 2 or not pol.coalesce or pol.path != "batched":
            return False
        if pol.nonfinite != "raise":
            # "propagate" semantics are per-matrix; keep NaN traffic out
            # of shared stacks so one tenant's poison stays theirs.
            return False
        if np.dtype(dtstr).type not in (np.float32, np.float64):
            return False
        if m * n > self.max_coalesce_elems:
            return False
        if policy is None and self._dispatcher.choose(m, n).engine != "caqr":
            return False
        return True

    def _execute_stacked(
        self, m, n, dtstr, policy, pol, reqs: list[_Pending]
    ) -> bool:
        """Rung 1.  Returns False when the group must degrade (rare)."""
        plan = self._stack_plan(m, n, dtstr, pol)
        W = plan.staging(len(reqs))
        for i, req in enumerate(reqs):
            np.copyto(W[i], req.A)
        finite = np.isfinite(W).all(axis=(1, 2))
        good = reqs
        if not finite.all():
            bad = [r for r, ok in zip(reqs, finite) if not ok]
            good = [r for r, ok in zip(reqs, finite) if ok]
            for req in bad:
                self._execute_one(req)  # raises the dispatcher's error
            if len(good) < 2:
                for req in good:
                    self._execute_one(req)
                return True
            W = plan.staging(len(good))
            for i, req in enumerate(good):
                np.copyto(W[i], req.A)
        preds = self._dispatcher.predict(m, n) if policy is None else []
        with _obs.span(
            "serving.stacked", cat="serving", m=m, n=n, requests=len(good)
        ):
            Q, R = plan.factor_stack(W)
        _obs.counters(serving_coalesced=len(good))
        # One stats-lock acquisition for the whole batch; _finish skips
        # its per-request count (the hot rung completes thousands of
        # requests a second, so per-request locking is measurable).
        self._count(
            coalesced_requests=len(good), coalesced_batches=1,
            completed=len(good),
        )
        for i, req in enumerate(good):
            self._finish(
                req,
                DispatchedQR(engine="caqr", Q=Q[i], R=R[i],
                             predictions=list(preds)),
                rung="coalesced",
                counted=True,
            )
        return True

    def _execute_shared_plan(self, m, n, dtstr, policy, reqs) -> None:
        """Rung 2: one plan for the group, per-request factorization."""
        plan = self._policy_plan(m, n, dtstr, policy)
        self._count(shared_plan_requests=len(reqs))
        for req in reqs:
            try:
                A = validate_matrix(
                    req.A, where="QRServer.qr", nonfinite=policy.nonfinite
                )
                f = plan.factor(A, validated=True)
                result = DispatchedQR(
                    engine="caqr", Q=f.form_q(), R=f.R,
                    fell_back=bool(getattr(f, "fell_back", False)),
                )
            except Exception as exc:
                self._fail(req, exc)
            else:
                self._finish(req, result, rung="shared-plan")

    def _execute_one(self, req: _Pending) -> None:
        """Rung 3: the uncoalesced dispatcher path."""
        self._count(per_request=1)
        try:
            result = self._dispatcher.qr(req.A)
        except Exception as exc:
            self._fail(req, exc)
        else:
            self._finish(req, result, rung="per-request")

    # -- plumbing ----------------------------------------------------------

    def _stack_plan(self, m, n, dtstr, pol) -> ServingPlan:
        key = (m, n, dtstr, pol)
        plan = self._stack_plans.get(key)
        if plan is None:
            plan = ServingPlan(m, n, np.dtype(dtstr), pol)
            self._stack_plans[key] = plan
            while len(self._stack_plans) > self._plan_cache_size:
                self._stack_plans.popitem(last=False)
        else:
            self._stack_plans.move_to_end(key)
        return plan

    def _policy_plan(self, m, n, dtstr, policy):
        key = (m, n, dtstr, policy)
        plan = self._policy_plans.get(key)
        if plan is None:
            plan = plan_qr(m, n, dtype=np.dtype(dtstr), policy=policy)
            self._policy_plans[key] = plan
            while len(self._policy_plans) > self._plan_cache_size:
                self._policy_plans.popitem(last=False)
        else:
            self._policy_plans.move_to_end(key)
        return plan

    def _finish(
        self, req: _Pending, result: DispatchedQR, rung: str,
        counted: bool = False,
    ) -> None:
        if _obs.enabled():
            queue_ms = (monotonic() - req.t_submit) * 1e3
            with _obs.span(
                "serving.request", cat="serving", tenant=req.tenant,
                rung=rung, queue_ms=round(queue_ms, 3),
                m=req.A.shape[0], n=req.A.shape[1],
            ):
                pass
        if not counted:
            self._count(completed=1)
        req.future.set_result(result)

    def _fail(self, req: _Pending, exc: Exception) -> None:
        if _obs.enabled():
            with _obs.span(
                "serving.request", cat="serving", tenant=req.tenant,
                rung="failed", error=type(exc).__name__,
                m=req.A.shape[0], n=req.A.shape[1],
            ):
                pass
        self._count(failed=1)
        req.future.set_exception(exc)
