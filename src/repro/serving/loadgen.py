"""Open-loop synthetic load generator for the serving front end.

Drives a :class:`~repro.serving.server.QRServer` (coalesced mode) or a
bare :class:`~repro.dispatch.QRDispatcher` (per-request mode) with a
stream of same-shape requests and reports throughput plus end-to-end
latency percentiles.  Two arrival disciplines:

* ``rate=None`` — *saturation*: every request is offered immediately;
  the measured requests/sec is the sustainable throughput ceiling.
* ``rate=λ`` — *open loop*: arrivals are paced at ``λ`` requests/sec
  regardless of completions (the generator never waits for results to
  offer the next request), which is what makes the latency percentiles
  honest under load — a closed-loop generator would self-throttle and
  hide queueing delay.

Shared by ``python -m repro serve-bench`` and
``benchmarks/bench_serving.py`` (the CI gate re-measures through this
module, so the gate and the CLI can never drift apart).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

__all__ = ["LoadReport", "run_load", "format_report"]


@dataclass
class LoadReport:
    """One load run: counts, throughput, and latency percentiles (ms)."""

    mode: str
    m: int
    n: int
    requests: int
    completed: int
    errors: int
    duration_s: float
    qps: float
    offered_qps: float | None
    p50_ms: float
    p95_ms: float
    p99_ms: float

    def as_dict(self) -> dict:
        return dict(self.__dict__)


def _percentiles(lat_ms: list[float]) -> tuple[float, float, float]:
    if not lat_ms:
        return (float("nan"),) * 3
    arr = np.asarray(lat_ms)
    p50, p95, p99 = np.percentile(arr, (50.0, 95.0, 99.0))
    return float(p50), float(p95), float(p99)


def _request_pool(m: int, n: int, dtype, pool: int, seed: int) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [
        np.asarray(rng.standard_normal((m, n)), dtype=dtype) for _ in range(pool)
    ]


def run_load(
    target,
    *,
    mode: str,
    m: int = 256,
    n: int = 32,
    dtype=np.float64,
    requests: int = 512,
    rate: float | None = None,
    tenants: int = 4,
    pool: int = 64,
    seed: int = 0,
    warmup: int = 8,
    max_inflight: int = 192,
) -> LoadReport:
    """Offer ``requests`` same-shape matrices to ``target`` and measure.

    Args:
        target: a ``QRServer`` (``mode="coalesced"``) or a
            ``QRDispatcher`` (``mode="per-request"``).
        mode: which surface ``target`` exposes.
        rate: offered arrival rate in requests/sec (open loop), or
            ``None`` for saturation.
        tenants: round-robin tenant labels (server mode), so per-tenant
            obs spans carry distinct labels.
        pool: distinct matrices cycled through (bounds generator memory
            while keeping the input stream non-degenerate).
        max_inflight: outstanding-request cap in server mode.  Saturation
            means "as fast as the server admits", not "overflow the
            bounded queue": the generator holds this many requests in
            flight (well above the coalescing window, so batches stay
            full) and offers the next as completions free a slot.
    """
    if mode not in ("coalesced", "per-request"):
        raise ValueError(f"unknown load mode {mode!r}")
    mats = _request_pool(m, n, dtype, pool, seed)
    labels = [f"tenant-{i}" for i in range(max(1, tenants))]
    interval = None if rate is None else 1.0 / float(rate)

    if mode == "per-request":
        return _run_per_request(target, mats, requests, interval, warmup, m, n, rate)

    # Warmup outside the measured window: first-touch plan/cache builds.
    for i in range(warmup):
        target.submit(mats[i % len(mats)], tenant=labels[0]).result()

    lat_ms: list[float] = []
    errors = [0]
    lock = threading.Lock()
    done = threading.Semaphore(0)
    inflight = threading.Semaphore(max(1, max_inflight))

    def _complete(t0: float, fut) -> None:
        dt_ms = (time.perf_counter() - t0) * 1e3
        with lock:
            if fut.exception() is None:
                lat_ms.append(dt_ms)
            else:
                errors[0] += 1
        inflight.release()
        done.release()

    t_start = time.perf_counter()
    next_arrival = t_start
    offered = 0
    for i in range(requests):
        if interval is not None:
            now = time.perf_counter()
            if now < next_arrival:
                time.sleep(next_arrival - now)
            next_arrival += interval
        inflight.acquire()
        t0 = time.perf_counter()
        try:
            fut = target.submit(
                mats[i % len(mats)], tenant=labels[i % len(labels)]
            )
        except Exception:
            with lock:
                errors[0] += 1
            inflight.release()
            done.release()
        else:
            fut.add_done_callback(lambda f, t0=t0: _complete(t0, f))
        offered += 1
    for _ in range(offered):
        done.acquire()
    duration = time.perf_counter() - t_start
    completed = len(lat_ms)
    p50, p95, p99 = _percentiles(lat_ms)
    return LoadReport(
        mode=mode, m=m, n=n, requests=requests, completed=completed,
        errors=errors[0], duration_s=duration,
        qps=completed / duration if duration > 0 else float("nan"),
        offered_qps=rate, p50_ms=p50, p95_ms=p95, p99_ms=p99,
    )


def _run_per_request(
    dispatcher, mats, requests, interval, warmup, m, n, rate
) -> LoadReport:
    for i in range(warmup):
        dispatcher.qr(mats[i % len(mats)])
    lat_ms: list[float] = []
    errors = 0
    t_start = time.perf_counter()
    next_arrival = t_start
    for i in range(requests):
        if interval is not None:
            now = time.perf_counter()
            if now < next_arrival:
                time.sleep(next_arrival - now)
            next_arrival += interval
        t0 = time.perf_counter()
        try:
            dispatcher.qr(mats[i % len(mats)])
        except Exception:
            errors += 1
        else:
            lat_ms.append((time.perf_counter() - t0) * 1e3)
    duration = time.perf_counter() - t_start
    p50, p95, p99 = _percentiles(lat_ms)
    return LoadReport(
        mode="per-request", m=m, n=n, requests=requests, completed=len(lat_ms),
        errors=errors, duration_s=duration,
        qps=len(lat_ms) / duration if duration > 0 else float("nan"),
        offered_qps=rate, p50_ms=p50, p95_ms=p95, p99_ms=p99,
    )


def format_report(report: LoadReport) -> str:
    rate = "saturation" if report.offered_qps is None else f"{report.offered_qps:.0f}/s offered"
    return (
        f"{report.mode:12s} {report.m}x{report.n}  {report.completed}/{report.requests} ok "
        f"({report.errors} err, {rate})  {report.qps:8.0f} req/s  "
        f"p50 {report.p50_ms:6.2f} ms  p95 {report.p95_ms:6.2f} ms  "
        f"p99 {report.p99_ms:6.2f} ms"
    )
