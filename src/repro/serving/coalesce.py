"""The bounded coalescing queue behind :class:`repro.serving.QRServer`.

One producer-side rule (admission control) and one consumer-side rule
(the coalescing window) live here, and nowhere else:

* **Admission**: the queue holds at most ``max_depth`` waiting requests.
  A ``put`` past the bound either *rejects* (raises
  :class:`~repro.serving.errors.QueueFullError` at the submitter — the
  default, backpressure the caller can see) or *sheds* (drops the oldest
  waiting request, returning it so the server can fail its future; the
  new request is admitted).  Unbounded queues turn overload into
  unbounded latency, which for an interactive serving tier is strictly
  worse than a typed error.

* **Window**: ``get_batch(max_batch, max_wait)`` blocks for the first
  request, then keeps collecting until either ``max_batch`` requests are
  on hand or ``max_wait`` seconds have passed since the first one was
  taken.  The window is what trades a bounded per-request latency cost
  (at most ``max_wait``) for batch occupancy — the same launch-cost
  amortization the paper's CAQR applies to tree nodes, applied to
  independent requests.

Construction of this class is reserved to :mod:`repro.serving` — the
layering lint (``tools/lint_layering.py``) flags ``CoalescingQueue(...)``
anywhere else, the same way it fences ``CholQRGuard`` into
``repro.runtime``.  Queue depth and window are *serving policy*; code
that wants a different trade-off configures a :class:`QRServer`, it does
not smuggle a private queue.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any

from .errors import QueueFullError, ServerClosedError

__all__ = ["CoalescingQueue"]


class CoalescingQueue:
    """Bounded MPSC queue with a time/size coalescing window.

    Thread-safe for many producers; the single consumer is the server's
    worker thread.  Items are opaque to the queue (the server enqueues
    its pending-request records).
    """

    OVERFLOW_MODES = ("reject", "shed")

    def __init__(self, max_depth: int = 256, overflow: str = "reject"):
        if max_depth < 1:
            raise ValueError("max_depth must be positive")
        if overflow not in self.OVERFLOW_MODES:
            raise ValueError(
                f"overflow must be one of {self.OVERFLOW_MODES}, got {overflow!r}"
            )
        self.max_depth = max_depth
        self.overflow = overflow
        self._items: deque[Any] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        # While the consumer sits in a filling window it only wants to be
        # woken once the batch can complete; producers skip the per-put
        # notify below this mark (a large win on few-core hosts, where
        # every futile wakeup is a GIL handoff).  None = not filling.
        self._wake_at: int | None = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def put(self, item: Any) -> Any | None:
        """Admit ``item``; returns the shed item (``overflow="shed"``) or None.

        Raises:
            ServerClosedError: the queue no longer admits requests.
            QueueFullError: depth bound hit under ``overflow="reject"``.
        """
        with self._not_empty:
            if self._closed:
                raise ServerClosedError("serving queue is closed")
            shed = None
            if len(self._items) >= self.max_depth:
                if self.overflow == "reject":
                    raise QueueFullError(
                        f"serving queue is full ({self.max_depth} waiting "
                        f"requests); retry later or raise max_depth",
                        depth=self.max_depth,
                    )
                shed = self._items.popleft()
            self._items.append(item)
            if self._wake_at is None or len(self._items) >= self._wake_at:
                self._not_empty.notify()
            return shed

    def get_batch(self, max_batch: int, max_wait: float) -> list[Any] | None:
        """Up to ``max_batch`` items within one coalescing window.

        Blocks until at least one item is available, then waits at most
        ``max_wait`` seconds (from taking charge of that first item) for
        the batch to fill.  Returns ``None`` exactly once the queue is
        closed *and* drained — the consumer's shutdown signal.
        """
        with self._not_empty:
            while not self._items:
                if self._closed:
                    return None
                self._not_empty.wait()
            if max_wait > 0 and len(self._items) < max_batch:
                deadline = time.monotonic() + max_wait
                self._wake_at = max_batch
                try:
                    while len(self._items) < max_batch and not self._closed:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0 or not self._not_empty.wait(remaining):
                            break
                finally:
                    self._wake_at = None
            count = min(len(self._items), max_batch)
            return [self._items.popleft() for _ in range(count)]

    def close(self) -> None:
        """Stop admitting; wake the consumer so it can drain and exit."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    def drain(self) -> list[Any]:
        """Remove and return everything waiting (used on abortive close)."""
        with self._lock:
            items = list(self._items)
            self._items.clear()
            return items
