"""Model-driven QR algorithm selection.

Section V-C: "The crossover point, where CAQR becomes slower than the
best GPU libraries, is around 4000 columns wide.  This suggests an
autotuning framework for QR where a different algorithm may be chosen
depending on the matrix size."  This module builds that framework: the
calibrated performance models predict every engine's runtime for the
requested shape, the dispatcher picks the winner, and — for the engines
implemented numerically in this library — actually runs it.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from .baselines import CULAQR, MAGMAQR, MKLQR
from .caqr_gpu import simulate_caqr, simulate_cholqr2, simulate_sharded
from .core.blocked import blocked_qr
from .gpusim.device import C2050, DeviceSpec
from .kernels.config import REFERENCE_CONFIG, KernelConfig
from .obs import tracer as _obs
from .runtime import ExecutionPolicy, QRPlan, plan_qr, resolve_policy
from .runtime.policy import UNSET
from .verify.guards import validate_matrix

__all__ = ["EnginePrediction", "DispatchedQR", "QRDispatcher"]


@dataclass(frozen=True)
class EnginePrediction:
    """Modeled runtime of one engine for one matrix shape."""

    engine: str
    seconds: float
    gflops: float


@dataclass
class DispatchedQR:
    """Outcome of a dispatched factorization."""

    engine: str
    Q: np.ndarray
    R: np.ndarray
    predictions: list[EnginePrediction] = field(default_factory=list)
    # True when a CholeskyQR2 policy's condition guard routed this matrix
    # to the Householder tree (path="auto" fallback).
    fell_back: bool = False


class _ShardedLRU:
    """An LRU key-value cache sharded by key hash, one lock per shard.

    The dispatcher's pred/plan caches are shared across serving threads;
    a single global lock serializes *every* lookup even when two hot
    shapes never touch the same entry.  Sharding by ``hash(key)`` keeps
    same-shape requests on one lock (LRU order within a shard stays
    exact) while different shapes proceed in parallel.  Capacity is
    divided across shards, so total size stays ~``capacity`` regardless
    of shard count; ``shards=1`` reproduces the old global-lock cache
    exactly (the LRU-eviction tests pin that configuration).
    """

    def __init__(self, capacity: int, shards: int = 8) -> None:
        if shards < 1:
            raise ValueError("shards must be positive")
        self._per_shard = max(1, -(-capacity // shards))  # ceil division
        self._shards = [OrderedDict() for _ in range(shards)]
        self._locks = [threading.Lock() for _ in range(shards)]

    def _index(self, key) -> int:
        return hash(key) % len(self._shards)

    def lock_for(self, key) -> threading.Lock:
        """The lock guarding ``key``'s shard (contention tests use this)."""
        return self._locks[self._index(key)]

    def get(self, key):
        i = self._index(key)
        with self._locks[i]:
            shard = self._shards[i]
            value = shard.get(key)
            if value is not None:
                shard.move_to_end(key)
            return value

    def put(self, key, value) -> None:
        i = self._index(key)
        with self._locks[i]:
            shard = self._shards[i]
            shard[key] = value
            shard.move_to_end(key)
            while len(shard) > self._per_shard:
                shard.popitem(last=False)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def __contains__(self, key) -> bool:
        i = self._index(key)
        with self._locks[i]:
            return key in self._shards[i]

    def __iter__(self):
        # Snapshot per shard under its lock; iteration order is
        # per-shard LRU, concatenated (order-insensitive callers only).
        for shard, lock in zip(self._shards, self._locks):
            with lock:
                keys = list(shard)
            yield from keys


class QRDispatcher:
    """Choose (and run) the fastest QR engine for a matrix shape.

    Engines:

    * ``"caqr"`` — this library's GPU CAQR (numerics:
      :func:`repro.core.caqr.caqr_qr`).
    * ``"blocked"`` — blocked Householder, modeled as the best hybrid
      library (MAGMA-style; numerics: :func:`repro.core.blocked.blocked_qr`).
    * ``"mkl"`` — multicore CPU QR (numerics: blocked Householder too —
      the algorithm is the same, only the platform model differs).
    """

    def __init__(
        self,
        device: DeviceSpec = C2050,
        config: KernelConfig = REFERENCE_CONFIG,
        include_cpu: bool = True,
        batched: bool = UNSET,
        lookahead: bool = UNSET,
        workers: int | None = UNSET,
        cache_size: int = 128,
        cache_shards: int = 8,
        nonfinite: str = UNSET,
        policy: ExecutionPolicy | None = None,
    ) -> None:
        self.device = device
        self.config = config
        self.include_cpu = include_cpu
        # The dispatcher's default policy mirrors its KernelConfig: the
        # CAQR engine runs with the modeled geometry it was predicted at.
        default = ExecutionPolicy(
            path="structured" if config.structured_tree else "batched",
            panel_width=config.panel_width,
            block_rows=config.block_rows,
            tree_shape=config.tree_shape,
            device=device,
            config=config,
        )
        self.policy = resolve_policy(
            "QRDispatcher",
            policy,
            batched=batched,
            lookahead=lookahead,
            workers=workers,
            nonfinite=nonfinite,
            default=default,
        )
        self._magma = MAGMAQR(gpu=device)
        self._cula = CULAQR(gpu=device)
        self._mkl = MKLQR()
        # (m, n) -> sorted predictions.  crossover_width probes O(log n)
        # shapes per call and qr() re-predicts per matrix; the models are
        # pure functions of the shape, so memoize them (LRU).  Both
        # caches are sharded by key hash with one lock per shard
        # (dispatchers are shared across serving threads; a global lock
        # would serialize unrelated hot shapes on every hit).
        self._pred_cache = _ShardedLRU(cache_size, cache_shards)
        # (m, n, dtype, engine) -> QRPlan, so dispatch-and-run on repeated
        # shapes skips planning entirely.
        self._plan_cache = _ShardedLRU(cache_size, cache_shards)
        self._cache_size = cache_size
        # (m, max_width) -> crossover column count; small and unbounded
        # in practice (callers probe a handful of heights).
        self._crossover_cache: dict[tuple[int, int], int | None] = {}
        self._crossover_lock = threading.Lock()

    # -- legacy attribute views (pre-policy API) ---------------------------

    @property
    def batched(self) -> bool:
        return self.policy.uses_batched

    @property
    def lookahead(self) -> bool:
        return self.policy.path == "lookahead"

    @property
    def workers(self) -> int | None:
        return self.policy.workers

    @property
    def nonfinite(self) -> str:
        return self.policy.nonfinite

    def predict(self, m: int, n: int) -> list[EnginePrediction]:
        """Modeled runtimes, fastest first (cached per shape)."""
        if m < 1 or n < 1:
            raise ValueError("matrix dimensions must be positive")
        key = (m, n)
        cached = self._pred_cache.get(key)
        if cached is not None:
            _obs.counters(pred_cache_hits=1)
            return list(cached)
        _obs.counters(pred_cache_misses=1)
        preds = []
        if self.policy.uses_cholqr:
            # The dispatcher's CAQR engine runs whatever path the policy
            # names; predict with the matching modeled launch stream.
            r = simulate_cholqr2(
                m,
                n,
                self.config,
                self.device,
                mixed=self.policy.path == "cholqr2_mixed",
                guard=self.policy.path == "auto",
            )
        elif self.policy.path == "sharded":
            r = simulate_sharded(
                m,
                n,
                self.config,
                self.device,
                shards=self.policy.shards,
                fanin=self.policy.effective_fanin,
                interconnect=self.policy.resolved_interconnect(),
            )
        else:
            r = simulate_caqr(m, n, self.config, self.device)
        preds.append(EnginePrediction("caqr", r.seconds, r.gflops))
        best_hybrid = min(
            (self._magma.simulate(m, n), self._cula.simulate(m, n)), key=lambda b: b.seconds
        )
        preds.append(EnginePrediction("blocked", best_hybrid.seconds, best_hybrid.gflops))
        if self.include_cpu:
            b = self._mkl.simulate(m, n)
            preds.append(EnginePrediction("mkl", b.seconds, b.gflops))
        preds.sort(key=lambda p: p.seconds)
        self._pred_cache.put(key, preds)
        return list(preds)

    def plan_for(self, m: int, n: int, dtype=np.float64) -> QRPlan:
        """The (cached) CAQR plan this dispatcher would run for a shape.

        Plans are built outside the lock (planning is the expensive part)
        and inserted last-wins, so concurrent first requests for one shape
        may both plan but always agree on the cached result.
        """
        key = (m, n, np.dtype(dtype).str, "caqr")
        plan = self._plan_cache.get(key)
        if plan is not None:
            _obs.counters(plan_cache_hits=1)
            return plan
        _obs.counters(plan_cache_misses=1)
        plan = plan_qr(m, n, dtype=dtype, policy=self.policy)
        self._plan_cache.put(key, plan)
        return plan

    def choose(self, m: int, n: int) -> EnginePrediction:
        """The fastest engine for this shape under the models."""
        return self.predict(m, n)[0]

    def crossover_width(self, m: int, max_width: int | None = None) -> int | None:
        """Smallest width (by doubling + bisection) where CAQR stops winning.

        Memoized per ``(m, max_width)``: the probe sequence is a pure
        function of the models, and callers (figure 8's frontier, the
        serving admission path) re-ask for the same heights repeatedly.
        """
        max_width = max_width or m
        key = (m, max_width)
        with self._crossover_lock:
            if key in self._crossover_cache:
                return self._crossover_cache[key]
        result = self._crossover_width_uncached(m, max_width)
        with self._crossover_lock:
            if len(self._crossover_cache) >= 4 * self._cache_size:
                self._crossover_cache.clear()  # degenerate caller; stay bounded
            self._crossover_cache[key] = result
        return result

    def _crossover_width_uncached(self, m: int, max_width: int) -> int | None:
        lo, hi = 1, None
        w = 64
        while w <= max_width:
            if self.choose(m, w).engine != "caqr":
                hi = w
                break
            lo = w
            w *= 2
        if hi is None:
            return None
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self.choose(m, mid).engine != "caqr":
                hi = mid
            else:
                lo = mid
        return hi

    def qr(self, A: np.ndarray) -> DispatchedQR:
        """Pick the engine for ``A``'s shape and run the factorization.

        The matrix is validated exactly once here; the cached plan then
        runs with ``validated=True``, so dispatched CAQR scans each input
        a single time end to end.
        """
        with _obs.maybe_trace(self.policy.trace):
            A = validate_matrix(A, where="QRDispatcher.qr", nonfinite=self.policy.nonfinite)
            m, n = A.shape
            with _obs.span("dispatch.qr", cat="dispatch", m=m, n=n):
                preds = self.predict(m, n)
                engine = preds[0].engine
                fell_back = False
                with _obs.span("engine", cat="dispatch", engine=engine):
                    if engine == "caqr":
                        plan = self.plan_for(m, n, dtype=A.dtype)
                        f = plan.factor(A, validated=True)
                        Q, R = f.form_q(), f.R
                        fell_back = bool(getattr(f, "fell_back", False))
                    else:
                        # Blocked Householder is the algorithm behind both the
                        # hybrid GPU libraries and MKL; numerically they coincide.
                        Q, R = blocked_qr(A, nb=64, nonfinite="propagate")
            return DispatchedQR(
                engine=engine, Q=Q, R=R, predictions=preds, fell_back=fell_back
            )
