"""repro — reproduction of "Communication-Avoiding QR Decomposition for GPUs".

Anderson, Ballard, Demmel, Keutzer — IPDPS 2011.

Subpackages
-----------
``repro.core``
    From-scratch numerics: Householder QR (packed/blocked), TSQR over
    configurable reduction trees, CAQR on a block grid, Givens /
    Gram-Schmidt / Cholesky-QR comparisons, one-sided Jacobi SVD,
    tall-skinny SVD via QR, QR-based least squares.
``repro.gpusim``
    Execution-driven GPU simulator (Fermi C2050 / GTX480 device models,
    roofline + wave-scheduling launch timing, PCIe link, timelines).
``repro.kernels``
    The paper's four GPU kernels with real math and analytic launch
    costs, plus the Section IV-E reduction-strategy micro-models.
``repro.caqr_gpu``
    The Figure-4 host driver: CAQR as a simulated kernel-launch stream.
``repro.baselines``
    MAGMA / CULA / MKL / BLAS2-GPU performance models.
``repro.tuning``
    Block-size autotuner (Figure 7).
``repro.rpca``
    Robust PCA for video background subtraction (Section VI).
``repro.krylov``
    s-step Krylov methods (matrix-powers bases, TSQR-orthogonalized
    Arnoldi, CA-GMRES) — the intro's most extreme tall-skinny workload.
``repro.runtime``
    Execution policies and reusable QR plans: ``ExecutionPolicy`` names
    *how* a factorization runs; ``plan_qr`` precomputes everything
    shape-dependent once for repeated ``plan.execute(A)`` calls.
``repro.dispatch``
    Model-driven QR engine selection (the Section V-C autotuning
    framework suggestion).
``repro.experiments``
    One module per table/figure of the evaluation.

Quickstart
----------
>>> import numpy as np
>>> from repro import tsqr_qr, caqr_qr
>>> A = np.random.default_rng(0).standard_normal((100_000, 64))
>>> Q, R = tsqr_qr(A)                      # numerics
>>> from repro import simulate_caqr
>>> simulate_caqr(1_000_000, 192).gflops   # modeled C2050 performance
"""

from .caqr_gpu import (
    CAQRGpuResult,
    caqr_gflops,
    caqr_gpu_factor,
    enumerate_caqr_launches,
    simulate_caqr,
    simulate_form_q,
)
from .core import (
    CAQRFactors,
    TSQRFactors,
    blocked_qr,
    caqr,
    caqr_qr,
    cholesky_qr,
    factorization_error,
    jacobi_svd,
    lstsq_caqr,
    lstsq_tsqr,
    orthogonality_error,
    qr_flops,
    tall_skinny_svd,
    tsqr,
    tsqr_qr,
)
from .dispatch import QRDispatcher
from .gpusim import C2050, GTX480, DeviceSpec
from .kernels import REFERENCE_CONFIG, KernelConfig
from .runtime import ExecutionPolicy, QRPlan, plan_qr

__version__ = "1.0.0"

__all__ = [
    "CAQRGpuResult",
    "caqr_gflops",
    "caqr_gpu_factor",
    "enumerate_caqr_launches",
    "simulate_caqr",
    "simulate_form_q",
    "CAQRFactors",
    "TSQRFactors",
    "blocked_qr",
    "caqr",
    "caqr_qr",
    "cholesky_qr",
    "factorization_error",
    "jacobi_svd",
    "lstsq_caqr",
    "lstsq_tsqr",
    "orthogonality_error",
    "qr_flops",
    "tall_skinny_svd",
    "tsqr",
    "tsqr_qr",
    "QRDispatcher",
    "ExecutionPolicy",
    "QRPlan",
    "plan_qr",
    "C2050",
    "GTX480",
    "DeviceSpec",
    "REFERENCE_CONFIG",
    "KernelConfig",
    "__version__",
]
