"""Serialization of implicit QR factors.

A factorization of a million-row matrix is expensive; downstream users
(least-squares solves, repeated Q applications) should not redo it.
These helpers persist :class:`~repro.core.tsqr.TSQRFactors` and
:class:`~repro.core.caqr.CAQRFactors` to NumPy ``.npz`` archives and
restore them fully functional (apply Q/Q^T, form Q).

Structured-tree factors store sparse reflectors and are rebuilt from
their row-support arrays on load.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .core.caqr import CAQRFactors, PanelFactor
from .core.structured import StructuredStackFactor, _SparseReflector
from .core.tree import build_tree
from .core.tsqr import TSQRFactors, _LevelZeroFactor, _TreeFactor

__all__ = ["save_tsqr", "load_tsqr", "save_caqr", "load_caqr"]

_FORMAT_VERSION = 1


def _tsqr_payload(f: TSQRFactors, prefix: str = "") -> dict:
    d: dict = {
        f"{prefix}meta": np.array([_FORMAT_VERSION, f.m, f.n, len(f.blocks)], dtype=np.int64),
        f"{prefix}tree_shape": np.array(f.tree.shape),
        f"{prefix}R": f.R,
    }
    for i, blk in enumerate(f.blocks):
        d[f"{prefix}b{i}_rows"] = np.array(blk.rows, dtype=np.int64)
        d[f"{prefix}b{i}_VR"] = blk.VR
        d[f"{prefix}b{i}_tau"] = blk.tau
    d[f"{prefix}n_levels"] = np.array(len(f.tree_factors), dtype=np.int64)
    for lvl, level in enumerate(f.tree_factors):
        d[f"{prefix}L{lvl}_count"] = np.array(len(level), dtype=np.int64)
        for g, tf in enumerate(level):
            base = f"{prefix}L{lvl}g{g}_"
            d[base + "group"] = np.array(tf.group, dtype=np.int64)
            d[base + "heights"] = np.array(tf.heights, dtype=np.int64)
            if tf.structured is not None:
                sf = tf.structured
                d[base + "structured"] = np.array(1, dtype=np.int64)
                d[base + "s_meta"] = np.array([sf.total_rows, sf.n, len(sf.reflectors)], dtype=np.int64)
                d[base + "s_heights"] = np.array(sf.heights, dtype=np.int64)
                d[base + "s_R"] = sf.R
                d[base + "s_flops"] = np.array(sf.flops)
                for ri, r in enumerate(sf.reflectors):
                    d[base + f"s_r{ri}_rows"] = r.rows
                    d[base + f"s_r{ri}_v"] = r.v
                    d[base + f"s_r{ri}_tau"] = np.array(r.tau)
            else:
                d[base + "structured"] = np.array(0, dtype=np.int64)
                d[base + "VR"] = tf.VR
                d[base + "tau"] = tf.tau
    return d


def _tsqr_from_payload(z, prefix: str = "") -> TSQRFactors:
    version, m, n, n_blocks = (int(v) for v in z[f"{prefix}meta"])
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported factor-archive version {version}")
    tree_shape = str(z[f"{prefix}tree_shape"])
    blocks = []
    for i in range(n_blocks):
        rows = tuple(int(v) for v in z[f"{prefix}b{i}_rows"])
        blocks.append(_LevelZeroFactor(rows=rows, VR=z[f"{prefix}b{i}_VR"], tau=z[f"{prefix}b{i}_tau"]))
    tree = build_tree(n_blocks, tree_shape)
    tree_factors = []
    for lvl in range(int(z[f"{prefix}n_levels"])):
        level = []
        for g in range(int(z[f"{prefix}L{lvl}_count"])):
            base = f"{prefix}L{lvl}g{g}_"
            group = tuple(int(v) for v in z[base + "group"])
            heights = tuple(int(v) for v in z[base + "heights"])
            if int(z[base + "structured"]):
                total, sn, n_ref = (int(v) for v in z[base + "s_meta"])
                refl = [
                    _SparseReflector(
                        rows=z[base + f"s_r{ri}_rows"],
                        v=z[base + f"s_r{ri}_v"],
                        tau=float(z[base + f"s_r{ri}_tau"]),
                    )
                    for ri in range(n_ref)
                ]
                sf = StructuredStackFactor(
                    total_rows=total,
                    n=sn,
                    heights=tuple(int(v) for v in z[base + "s_heights"]),
                    reflectors=refl,
                    R=z[base + "s_R"],
                    flops=float(z[base + "s_flops"]),
                )
                level.append(_TreeFactor(group=group, heights=heights, structured=sf))
            else:
                level.append(
                    _TreeFactor(group=group, heights=heights, VR=z[base + "VR"], tau=z[base + "tau"])
                )
        tree_factors.append(level)
    return TSQRFactors(m=m, n=n, blocks=blocks, tree=tree, tree_factors=tree_factors, R=z[f"{prefix}R"])


def save_tsqr(path: str | Path, factors: TSQRFactors) -> None:
    """Persist a TSQR factorization to a ``.npz`` archive."""
    np.savez_compressed(path, **_tsqr_payload(factors))


def load_tsqr(path: str | Path) -> TSQRFactors:
    """Restore a TSQR factorization saved by :func:`save_tsqr`."""
    with np.load(path, allow_pickle=False) as z:
        return _tsqr_from_payload(z)


def save_caqr(path: str | Path, factors: CAQRFactors) -> None:
    """Persist a CAQR factorization to a ``.npz`` archive."""
    d: dict = {
        "caqr_meta": np.array(
            [_FORMAT_VERSION, factors.m, factors.n, factors.panel_width, factors.block_rows, len(factors.panels)],
            dtype=np.int64,
        ),
        "caqr_tree_shape": np.array(factors.tree_shape),
        "caqr_R": factors.R,
    }
    for i, p in enumerate(factors.panels):
        d[f"p{i}_cols"] = np.array([p.col_start, p.col_stop, p.row_start], dtype=np.int64)
        d.update(_tsqr_payload(p.factors, prefix=f"p{i}_"))
    np.savez_compressed(path, **d)


def load_caqr(path: str | Path) -> CAQRFactors:
    """Restore a CAQR factorization saved by :func:`save_caqr`."""
    with np.load(path, allow_pickle=False) as z:
        version, m, n, pw, br, n_panels = (int(v) for v in z["caqr_meta"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported factor-archive version {version}")
        panels = []
        for i in range(n_panels):
            c0, c1, r0 = (int(v) for v in z[f"p{i}_cols"])
            panels.append(
                PanelFactor(
                    col_start=c0,
                    col_stop=c1,
                    row_start=r0,
                    factors=_tsqr_from_payload(z, prefix=f"p{i}_"),
                )
            )
        return CAQRFactors(
            m=m,
            n=n,
            panel_width=pw,
            block_rows=br,
            tree_shape=str(z["caqr_tree_shape"]),
            panels=panels,
            R=z["caqr_R"],
        )
