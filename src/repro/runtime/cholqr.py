"""Condition guard and tree fallback for the CholeskyQR2 fast paths.

The engine (:func:`repro.core.cholqr2_factor`) is pure numerics; *this*
module owns every accept/reject decision, which is the layering rule
``tools/lint_layering.py`` enforces: condition-estimate thresholds and
fallback choices may only be constructed inside ``repro.runtime``.

Three paths share the machinery:

* ``path="cholqr2"`` / ``path="cholqr2_mixed"`` — the guard *refuses*
  inputs past the condition limit by raising
  :class:`~repro.core.cholesky_qr.CholeskyBreakdownError` (explicitly
  asking for the cheap path means you want to know when it cannot
  deliver <1e-14 orthogonality);
* ``path="auto"`` — the same checks instead trigger a transparent
  fallback to the ``lookahead`` tree, including on Cholesky breakdown
  mid-factorization, so ``auto`` never raises on ill-conditioned input.

Guard checks, in execution order (all computed by the engine, judged
here):

1. ``condest_sample`` — a row-sampled Gram condition estimate (~1% of
   the full Gram cost) so wildly ill-conditioned tall inputs bail
   before any O(mn) work;
2. ``condest`` — max/min diagonal ratio of the first Cholesky factor;
   the limit is dtype-aware: CholeskyQR2 squares the condition number
   into the Gram matrix, so a float64 Gram tolerates ``~1/(8 sqrt(eps))
   ~ 4e6`` while a float32 Gram (the mixed path, or float32 data) caps
   near ``0.5/sqrt(eps32) ~ 1400``;
3. ``orth1`` — post-hoc ``||Q1^T Q1 - I||_F`` after the first pass; the
   second pass converges only from ``orth1 < 1``, so anything past
   ``ORTH1_LIMIT`` cannot be repaired by reorthogonalization.

Fallbacks are observable: each one emits an ``obs`` span + counter and
increments every open :func:`count_fallbacks` scope (the fuzz harness
uses this to prove ``auto`` really fell back on adversarial input and
never on Gaussian input).
"""

from __future__ import annotations

import math
import threading
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from repro.obs import tracer as _obs

from .policy import ExecutionPolicy

__all__ = [
    "ORTH1_LIMIT",
    "CholQRFactors",
    "CholQRGuard",
    "FallbackCounter",
    "count_fallbacks",
    "run_cholqr",
]

# The reorthogonalization pass contracts the orthogonality error only
# while ||Q1^T Q1 - I|| < 1; refuse past 0.5 so the second pass always
# lands at machine precision with margin.
ORTH1_LIMIT = 0.5


class _FallbackRequested(Exception):
    """Internal control flow: guard refused, policy says take the tree.

    Never escapes :func:`run_cholqr`.
    """

    def __init__(self, stage: str, value: float, limit: float):
        super().__init__(stage)
        self.stage = stage
        self.value = value
        self.limit = limit


@dataclass(eq=False)  # identity equality: scopes nest, list.remove must not
class FallbackCounter:
    """Counts guard-triggered tree fallbacks inside a scope."""

    fallbacks: int = 0
    stages: tuple = ()

    def record(self, stage: str) -> None:
        self.fallbacks += 1
        self.stages = self.stages + (stage,)


_COUNTERS: list[FallbackCounter] = []
_COUNTERS_LOCK = threading.Lock()


@contextmanager
def count_fallbacks():
    """Context manager yielding a live :class:`FallbackCounter`."""
    counter = FallbackCounter()
    with _COUNTERS_LOCK:
        _COUNTERS.append(counter)
    try:
        yield counter
    finally:
        with _COUNTERS_LOCK:
            _COUNTERS.remove(counter)


def _record_fallback(stage: str) -> None:
    with _COUNTERS_LOCK:
        for counter in _COUNTERS:
            counter.record(stage)


@dataclass(frozen=True)
class CholQRGuard:
    """The accept/reject policy for one CholeskyQR2 factorization.

    ``condition_limit`` bounds the Gram-diagonal condition estimate;
    ``orth_limit`` bounds the post-hoc first-pass orthogonality error;
    ``fallback`` selects the disposition — ``False`` raises
    :class:`CholeskyBreakdownError` (explicit cholqr paths), ``True``
    raises the internal fallback signal (``auto``).
    """

    condition_limit: float
    orth_limit: float = ORTH1_LIMIT
    fallback: bool = False

    @classmethod
    def for_policy(cls, policy: ExecutionPolicy, dtype) -> "CholQRGuard":
        """Dtype- and path-aware guard thresholds.

        The first-pass Gram squares ``cond(A)``; it must stay resolvable
        in the *Gram accumulation* precision, which is float32 when the
        data is float32 or the path is ``cholqr2_mixed``.
        """
        dt = np.dtype(dtype)
        gram_is_f32 = dt == np.dtype(np.float32) or (
            policy.path == "cholqr2_mixed" and dt == np.dtype(np.float64)
        )
        if policy.condition_limit is not None:
            limit = float(policy.condition_limit)
        elif gram_is_f32:
            # Above ~0.5/sqrt(eps32) the float32 Gram is numerically
            # indefinite; the 0.5 margin also clears the condition-number
            # tail of small square Gaussian matrices, keeping `auto` off
            # the tree for every well-conditioned kind.
            limit = 0.5 / math.sqrt(float(np.finfo(np.float32).eps))
        else:
            limit = 1.0 / (8.0 * math.sqrt(float(np.finfo(np.float64).eps)))
        return cls(condition_limit=limit, fallback=policy.path == "auto")

    def _refuse(self, stage: str, value: float, limit: float):
        if self.fallback:
            raise _FallbackRequested(stage, value, limit)
        from repro.core.cholesky_qr import CholeskyBreakdownError

        raise CholeskyBreakdownError(
            f"cholqr2 guard: {stage} = {value:.3g} exceeds the limit {limit:.3g} "
            f"(input too ill-conditioned for the CholeskyQR2 fast path; use "
            f"path='auto' or path='lookahead')",
            stage=stage,
            condest=value,
        )

    def __call__(self, stage: str, value: float) -> None:
        """The engine's ``check`` hook; may raise to stop the run."""
        if stage in ("condest_sample", "condest"):
            if not value <= self.condition_limit:  # NaN/inf also refuse
                self._refuse(stage, value, self.condition_limit)
        elif stage == "orth1":
            if not value <= self.orth_limit:
                self._refuse(stage, value, self.orth_limit)


class CholQRFactors:
    """Explicit-Q factors from a CholeskyQR2 run (or its tree fallback).

    Duck-types the implicit-factor objects the other paths return:
    ``R``, ``form_q()``, and thin-Q ``apply_qt`` / ``apply_q``.  Unlike
    the Householder factor objects, Q is already explicit, so
    ``form_q()`` is free and the apply methods are plain GEMMs with the
    *thin* factor (they take/return ``n``-row coefficient blocks, which
    is what the least-squares and randomized-SVD pipelines consume).
    ``fell_back`` / ``fallback_stage`` record whether the guard routed
    this matrix to the tree; ``info`` carries the engine's
    :class:`~repro.core.cholesky_qr.CholQRInfo` when the cheap path ran.
    """

    def __init__(self, Q: np.ndarray, R: np.ndarray, *, info=None,
                 fell_back: bool = False, fallback_stage: str | None = None):
        self._q = Q
        self.R = R
        self.info = info
        self.fell_back = fell_back
        self.fallback_stage = fallback_stage

    @property
    def shape(self) -> tuple[int, int]:
        return (self._q.shape[0], self.R.shape[1])

    def form_q(self) -> np.ndarray:
        return self._q

    def apply_qt(self, B: np.ndarray) -> np.ndarray:
        return self._q.T @ B

    def apply_q(self, B: np.ndarray) -> np.ndarray:
        return self._q @ B


def _fallback_schedule(m: int, n: int, policy: ExecutionPolicy):
    from dataclasses import replace

    from repro.graph.executor import build_lookahead_schedule

    tree_policy = replace(policy, path="lookahead", condition_limit=None)
    return build_lookahead_schedule(m, n, tree_policy)


def _run_fallback(A, policy, schedule, stage: str):
    """Factor on the Householder tree after a guard refusal."""
    from repro.graph.executor import run_lookahead_schedule

    _record_fallback(stage)
    m, n = A.shape
    with _obs.span("cholqr.fallback", cat="cholqr", m=m, n=n, stage=stage):
        _obs.counters(cholqr_fallbacks=1)
        if schedule is None:
            schedule = _fallback_schedule(m, n, policy)
        factors = run_lookahead_schedule(schedule, A)
        Q = factors.form_q()
    return CholQRFactors(Q, factors.R, fell_back=True, fallback_stage=stage)


def run_cholqr(
    A: np.ndarray,
    policy: ExecutionPolicy,
    *,
    workspace=None,
    schedule=None,
) -> CholQRFactors:
    """Factor validated ``A`` under a CholeskyQR2 policy.

    ``workspace`` is an optional
    :class:`~repro.core.cholesky_qr.CholQRWorkspace` (plans pass a
    per-thread one); ``schedule`` is an optional prebuilt look-ahead
    schedule for the ``auto`` fallback.  Wide matrices factor their
    leading square block on the cheap path and finish the trailing
    columns with one GEMM, exactly like the thin-QR contract of every
    other path.
    """
    from repro.core.cholesky_qr import CholeskyBreakdownError, cholqr2_factor

    m, n = A.shape
    k = min(m, n)
    guard = CholQRGuard.for_policy(policy, A.dtype)
    mixed = policy.path == "cholqr2_mixed"
    left = A if n <= m else np.ascontiguousarray(A[:, :m])
    try:
        with _obs.span(
            "cholqr.factor", cat="cholqr", m=m, n=n, path=policy.path, mixed=mixed
        ):
            Q, R11, info = cholqr2_factor(
                left, mixed=mixed, workspace=workspace, check=guard
            )
    except _FallbackRequested as req:
        return _run_fallback(A, policy, schedule, req.stage)
    except CholeskyBreakdownError as exc:
        if policy.path == "auto":
            # Breakdown mid-factorization (not a guard refusal): the
            # adaptive path still owes the caller a factorization.
            return _run_fallback(A, policy, schedule, exc.stage)
        raise
    if n > m:
        R = np.empty((k, n), dtype=A.dtype)
        R[:, :m] = R11
        R[:, m:] = Q.T @ A[:, m:]
    else:
        R = R11
    return CholQRFactors(Q, R, info=info)
