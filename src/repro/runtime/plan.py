"""Reusable QR plans: shape-dependent work computed once, replayed per matrix.

The Robust-PCA window loop factors the *same* 110,592 x 100 shape once
per video chunk, and the TSQR/CAQR schedule (panel partition, reduction
trees, look-ahead task DAG, compact-WY scratch shapes) is a pure
function of ``(m, n, dtype, policy)``.  :func:`plan_qr` derives all of
it once; :meth:`QRPlan.execute` then runs each matrix with zero
re-planning and — because it drives the exact same code paths the
one-shot entry points use — bit-identical results to a direct
``caqr_qr(A, policy=...)`` call.

Heavy modules (:mod:`repro.core`, :mod:`repro.graph.executor`,
:mod:`repro.caqr_gpu`) are imported lazily inside functions: the policy
layer sits *below* them in the import graph.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.obs import tracer as _obs

from .policy import ExecutionPolicy

__all__ = ["PanelSpec", "QRPlan", "plan_qr"]


@dataclass(frozen=True)
class PanelSpec:
    """Shape-dependent facts about one column panel of the factorization."""

    col_start: int
    col_stop: int
    row_start: int
    height: int  # rows below the diagonal redraw (m - row_start)
    block_rows: int  # effective level-0 block height (>= panel width)
    blocks: int  # level-0 row blocks
    tree_levels: int
    trailing_cols: int  # columns updated by this panel's Q^T

    @property
    def width(self) -> int:
        return self.col_stop - self.col_start


def _plan_dtype(dtype) -> np.dtype:
    """The working dtype a validated input of ``dtype`` would have."""
    dt = np.dtype(dtype)
    if dt.kind == "c":
        raise TypeError("plan_qr: complex dtypes are not supported")
    return dt if dt == np.dtype(np.float32) else np.dtype(np.float64)


def _panel_specs(m: int, n: int, policy: ExecutionPolicy) -> tuple[PanelSpec, ...]:
    from repro.core.tree import build_tree
    from repro.core.tsqr import row_blocks

    k = min(m, n)
    specs = []
    for c0 in range(0, k, policy.panel_width):
        pw_p = min(policy.panel_width, k - c0)
        r0 = c0  # the grid is redrawn lower by the panel width
        hp = m - r0
        bh = max(policy.block_rows, pw_p)
        nb = len(row_blocks(hp, bh))
        tree = build_tree(nb, policy.tree_shape)
        specs.append(
            PanelSpec(
                col_start=c0,
                col_stop=c0 + pw_p,
                row_start=r0,
                height=hp,
                block_rows=bh,
                blocks=nb,
                tree_levels=len(tree.levels),
                trailing_cols=n - (c0 + pw_p),
            )
        )
    return tuple(specs)


def _wy_scratch_bytes(
    m: int, n: int, policy: ExecutionPolicy, panels: tuple[PanelSpec, ...], itemsize: int
) -> int:
    """Elements the compact-WY ``(V, T)`` factors of every panel occupy.

    Level 0 contributes ``blocks x (bh x w + w x w)``; each tree group of
    arity ``a`` contributes ``(a w) x w + w x w``.  This is the peak
    apply-plan footprint a server would pre-allocate for the shape.
    """
    from repro.core.tree import build_tree

    elems = 0
    for p in panels:
        w = p.width
        elems += p.blocks * (p.block_rows * w + w * w)
        tree = build_tree(p.blocks, policy.tree_shape)
        for level in tree.levels:
            for group in level:
                a = len(group)
                elems += a * w * w + w * w
    return elems * itemsize


class QRPlan:
    """A reusable factorization plan for one ``(m, n, dtype, policy)``.

    Create with :func:`plan_qr`.  ``execute(A)`` factors any matrix of
    the planned shape/dtype, bit-identical to the corresponding direct
    ``caqr_qr(A, policy=...)`` call; repeated executions skip all
    planning (panel schedule, look-ahead DAG construction, tree-recipe
    capture).  ``simulate()`` returns the modeled GPU cost of the same
    shape under ``policy.config`` / ``policy.device``.
    """

    def __init__(
        self,
        m: int,
        n: int,
        dtype: np.dtype,
        policy: ExecutionPolicy,
        panels: tuple[PanelSpec, ...],
        schedule=None,
        recipes: tuple = (),
        wy_scratch_bytes: int = 0,
    ) -> None:
        self.m = m
        self.n = n
        self.dtype = dtype
        self.policy = policy
        self.panels = panels
        self.wy_scratch_bytes = wy_scratch_bytes
        self._schedule = schedule
        self._recipes = recipes  # strong refs keep warmed recipes alive
        self._sim = None
        # CholeskyQR2 scratch (the mixed path's float32 Gram cast buffer)
        # is reused across executes but never across threads.
        self._cholqr_tls = threading.local() if policy.uses_cholqr else None

    @property
    def shape(self) -> tuple[int, int]:
        return (self.m, self.n)

    def __repr__(self) -> str:
        return (
            f"QRPlan({self.m}x{self.n}, {self.dtype}, path={self.policy.path!r}, "
            f"panels={len(self.panels)})"
        )

    # -- execution ---------------------------------------------------------

    def _prepare(self, A: np.ndarray, validated: bool) -> np.ndarray:
        from repro.verify.guards import validate_matrix

        if not validated:
            A = validate_matrix(A, where="QRPlan.execute", nonfinite=self.policy.nonfinite)
        else:
            A = np.asarray(A)
        if A.shape != (self.m, self.n):
            raise ValueError(
                f"QRPlan.execute: matrix shape {A.shape} does not match the "
                f"planned shape ({self.m}, {self.n})"
            )
        if A.dtype != self.dtype:
            raise ValueError(
                f"QRPlan.execute: matrix dtype {A.dtype} does not match the "
                f"planned dtype {self.dtype}"
            )
        return A

    def factor(self, A: np.ndarray, validated: bool = False):
        """Factor ``A`` under the plan; returns the implicit-Q factors.

        ``validated=True`` skips the guard layer entirely — for callers
        (the dispatcher) that already validated and normalized ``A``,
        making one scan per matrix the whole-pipeline total.
        """
        with _obs.maybe_trace(self.policy.trace):
            A = self._prepare(A, validated)
            with _obs.span(
                "plan.factor", cat="plan", m=self.m, n=self.n, path=self.policy.path
            ):
                if self.policy.path == "lookahead":
                    from repro.graph.executor import run_lookahead_schedule

                    return run_lookahead_schedule(self._schedule, A)
                if self.policy.uses_cholqr:
                    from repro.runtime.cholqr import run_cholqr

                    return run_cholqr(
                        A,
                        self.policy,
                        workspace=self._cholqr_workspace(),
                        schedule=self._schedule,
                    )
                if self.policy.path == "sharded":
                    from repro.distributed.sharded import run_sharded

                    return run_sharded(A, self.policy, schedule=self._schedule)
                if self.policy.path == "streaming":
                    from repro.streaming.qr import run_streaming_matrix

                    return run_streaming_matrix(A, self.policy, schedule=self._schedule)
                from repro.core.caqr import _caqr_serial

                return _caqr_serial(A, self.policy)

    def _cholqr_workspace(self):
        ws = getattr(self._cholqr_tls, "ws", None)
        if ws is None:
            from repro.core.cholesky_qr import CholQRWorkspace

            ws = CholQRWorkspace()
            self._cholqr_tls.ws = ws
        return ws

    def execute(self, A: np.ndarray, validated: bool = False):
        """Explicit thin ``(Q, R)`` of ``A`` under the plan."""
        f = self.factor(A, validated=validated)
        return f.form_q(), f.R

    # -- modeled cost ------------------------------------------------------

    def simulate(self, streams: int | None = None):
        """Modeled GPU cost of this shape (cached for the serial stream)."""
        if self.m < 1 or self.n < 1:
            raise ValueError("simulate: degenerate shapes have no modeled timeline")
        if self.policy.path == "streaming":
            raise ValueError(
                "simulate: the streaming path is out-of-core (no single "
                "modeled timeline); simulate the per-chunk shape "
                f"({self.policy.chunk_rows} x {self.n}) instead"
            )
        if self.policy.uses_cholqr:
            # O(1) launches on one stream: the ``streams`` knob has no
            # effect on the modeled CholeskyQR2 timeline.
            if self._sim is None:
                from repro.caqr_gpu import simulate_cholqr2

                self._sim = simulate_cholqr2(
                    self.m,
                    self.n,
                    self.policy.resolved_config(),
                    self.policy.resolved_device(),
                    mixed=self.policy.path == "cholqr2_mixed",
                    guard=self.policy.path == "auto",
                )
            return self._sim
        if self.policy.path == "sharded":
            # Per-device local CAQR + modeled reduction traffic; the
            # ``streams`` knob is per-device and does not apply here.
            if self._sim is None:
                from repro.caqr_gpu import simulate_sharded

                self._sim = simulate_sharded(
                    self.m,
                    self.n,
                    self.policy.resolved_config(),
                    self.policy.resolved_device(),
                    shards=self.policy.shards,
                    fanin=self.policy.effective_fanin,
                    interconnect=self.policy.resolved_interconnect(),
                )
            return self._sim
        if streams is not None:
            from repro.caqr_gpu import simulate_caqr

            return simulate_caqr(
                self.m,
                self.n,
                self.policy.resolved_config(),
                self.policy.resolved_device(),
                streams=streams,
            )
        if self._sim is None:
            from repro.caqr_gpu import simulate_caqr

            self._sim = simulate_caqr(
                self.m, self.n, self.policy.resolved_config(), self.policy.resolved_device()
            )
        return self._sim

    def task_graph(self):
        """The plan's :class:`~repro.graph.highlevel.TaskGraph` (structural).

        Compiled by the producer matching the plan's path: the captured
        look-ahead schedule, the prebuilt shard-reduction schedule, or
        the CAQR panel/tree/trailing layers for the serial strategies.
        The graph is unbound (``fn=None``) — it is the schedulable /
        fingerprintable shape of the plan, not a second execution engine
        (``factor`` stays the way to run a plan).  CholeskyQR2 paths are
        O(1) launch chains with no graph form.
        """
        if self.policy.uses_cholqr:
            raise ValueError(
                "task_graph: CholeskyQR2 paths are O(1) launch chains; "
                "there is no task graph to compile"
            )
        if self.policy.path == "lookahead":
            from repro.graph.executor import emit_lookahead_layers

            return emit_lookahead_layers(self._schedule)
        if self.policy.path == "sharded":
            from repro.distributed.sharded import emit_sharded_layers

            return emit_sharded_layers(self._schedule)
        if self.policy.path == "streaming":
            from repro.streaming.graphs import emit_streaming_layers

            return emit_streaming_layers(
                self.m, self.n, self.policy.chunk_rows, schedule=self._schedule
            )
        from repro.graph.dag import emit_caqr_layers

        return emit_caqr_layers(
            self.m,
            self.n,
            self.policy.resolved_config(),
            self.policy.resolved_device(),
            lookahead=self.policy.lookahead_edge,
        )

    def describe(self) -> str:
        """One human-readable block summarizing the plan."""
        p = self.policy
        lines = [
            f"QR plan for {self.m} x {self.n} ({self.dtype})",
            f"  path         {p.path}"
            + (f" (workers={p.effective_workers})" if p.path == "lookahead" else "")
            + (
                f" (shards={p.shards}, fanin={p.effective_fanin})"
                if p.path == "sharded"
                else ""
            )
            + (f" (chunk_rows={p.chunk_rows})" if p.path == "streaming" else ""),
            f"  geometry     panel_width={p.panel_width} block_rows={p.block_rows} "
            f"tree={p.tree_shape}",
            f"  panels       {len(self.panels)}",
            f"  wy scratch   {self.wy_scratch_bytes / 1e6:.2f} MB",
        ]
        if self.m >= 1 and self.n >= 1 and p.path != "streaming":
            sim = self.simulate()
            lines.append(
                f"  modeled      {sim.seconds * 1e3:.2f} ms on "
                f"{p.resolved_device().name} ({sim.gflops:.1f} GFLOPS)"
            )
        return "\n".join(lines)


def plan_qr(
    m: int,
    n: int,
    dtype=np.float64,
    policy: ExecutionPolicy | None = None,
) -> QRPlan:
    """Build a reusable :class:`QRPlan` for an ``m x n`` factorization.

    Everything shape-dependent is computed here, once: the panel
    schedule, the per-panel reduction trees (captured into the
    executor's recipe cache for the look-ahead path), the look-ahead
    task DAG, and the compact-WY scratch footprint.  The policy is
    validated at construction, so ``plan.execute`` never re-resolves
    kwargs.
    """
    if m < 0 or n < 0:
        raise ValueError("matrix dimensions must be non-negative")
    policy = policy if policy is not None else ExecutionPolicy()
    with _obs.maybe_trace(policy.trace), _obs.span(
        "plan.build", cat="plan", m=m, n=n, path=policy.path
    ):
        return _plan_qr_impl(m, n, dtype, policy)


def _plan_qr_impl(m: int, n: int, dtype, policy: ExecutionPolicy) -> QRPlan:
    dt = _plan_dtype(dtype)
    if policy.uses_cholqr:
        # The cheap path has no panel/tree structure: its scratch is the
        # n x n Gram + triangular smalls (and the float32 Gram cast
        # buffer on the mixed path); "auto" additionally prebuilds the
        # look-ahead fallback schedule so a guarded execute never plans.
        k = min(m, n)
        scratch = 3 * k * k * dt.itemsize
        if policy.path == "cholqr2_mixed" and dt == np.dtype(np.float64):
            scratch += m * k * np.dtype(np.float32).itemsize
        schedule = None
        if policy.path == "auto" and m >= 1 and n >= 1:
            from repro.runtime.cholqr import _fallback_schedule

            schedule = _fallback_schedule(m, n, policy)
        return QRPlan(
            m=m,
            n=n,
            dtype=dt,
            policy=policy,
            panels=(),
            schedule=schedule,
            recipes=(),
            wy_scratch_bytes=scratch,
        )
    if policy.path == "sharded":
        # The shard row deal and fan-in reduction schedule are pure
        # functions of (m, n, shards, fanin): build them once here so
        # every execute replays the same tree (its fingerprint is what
        # tests/data/fingerprints.json pins).  Panel structure lives
        # per shard; the plan-level scratch is the widest shard's
        # compact-WY footprint times the rank count.
        from repro.distributed.sharded import build_shard_schedule

        schedule = build_shard_schedule(m, n, policy.shards, policy.effective_fanin)
        scratch = 0
        if schedule.rows:
            s0, e0 = schedule.rows[0]  # first shard is the tallest
            shard_panels = _panel_specs(e0 - s0, n, policy)
            scratch = schedule.shards * _wy_scratch_bytes(
                e0 - s0, n, policy, shard_panels, dt.itemsize
            )
        return QRPlan(
            m=m,
            n=n,
            dtype=dt,
            policy=policy,
            panels=(),
            schedule=schedule,
            recipes=(),
            wy_scratch_bytes=scratch,
        )
    if policy.path == "streaming":
        # The chunk row deal is a pure function of (m, chunk_rows); the
        # plan-level panel specs describe one full-height chunk (the
        # shape every steady-state chunk replays).  Scratch is the
        # out-of-core resident bound: one chunk's compact-WY footprint
        # plus the n x n carry and the (2n) x n merge stack — notably
        # *not* a function of m.
        from repro.streaming.qr import build_stream_schedule

        schedule = build_stream_schedule(m, n, policy.chunk_rows)
        ch = min(policy.chunk_rows, m) if m else policy.chunk_rows
        chunk_panels = _panel_specs(ch, n, policy) if ch and n else ()
        scratch = _wy_scratch_bytes(ch, n, policy, chunk_panels, dt.itemsize)
        scratch += 3 * min(m, n) * n * dt.itemsize
        return QRPlan(
            m=m,
            n=n,
            dtype=dt,
            policy=policy,
            panels=chunk_panels,
            schedule=schedule,
            recipes=(),
            wy_scratch_bytes=scratch,
        )
    panels = _panel_specs(m, n, policy)
    scratch = _wy_scratch_bytes(m, n, policy, panels, dt.itemsize)
    schedule = None
    recipes: tuple = ()
    if policy.path == "lookahead":
        from repro.graph.executor import _recipe, build_lookahead_schedule

        schedule = build_lookahead_schedule(m, n, policy)
        # Warm (and pin) the per-panel tree recipes so the first execute
        # replays them instead of capturing.
        recipes = tuple(
            _recipe(p.height, p.width, p.block_rows, policy.tree_shape) for p in panels
        )
    return QRPlan(
        m=m,
        n=n,
        dtype=dt,
        policy=policy,
        panels=panels,
        schedule=schedule,
        recipes=recipes,
        wy_scratch_bytes=scratch,
    )
