"""Runtime policy/plan layer: one object naming *how* a factorization runs.

PRs 1-3 each threaded a growing set of execution kwargs (``batched``,
``structured``, ``lookahead``, ``workers``, ``nonfinite``, panel/tree
geometry) by hand through every public entry point.  This package
collapses that sprawl into a Parla-style policy/plan/execute separation:

* :class:`ExecutionPolicy` — a frozen dataclass naming the execution
  path, its geometry, worker count, numerics policy and the modeled
  device/kernel configuration.  Every entry point accepts ``policy=``;
  the old kwargs survive as thin deprecation shims that build a policy
  internally (:func:`resolve_policy`).
* :func:`plan_qr` / :class:`QRPlan` — everything shape-dependent about a
  factorization (panel schedule, reduction-tree recipes, look-ahead task
  DAG, compact-WY scratch sizes, the validated policy) computed once and
  replayed by ``plan.execute(A)`` for repeated bit-identical
  factorizations; ``plan.simulate()`` gives the modeled GPU cost of the
  same shape.
* :mod:`repro.runtime.cholqr` — the condition guard and tree fallback
  behind the CholeskyQR2 fast paths (``path="cholqr2"`` /
  ``"cholqr2_mixed"`` / ``"auto"``); every accept/reject threshold and
  fallback decision is constructed here and nowhere else (enforced by
  ``tools/lint_layering.py``).

Layering: ``repro.core`` / ``repro.graph`` / ``repro.dispatch`` import
:mod:`repro.runtime.policy` (which only depends on the guard layer);
:mod:`repro.runtime.plan` lazily imports the heavy numeric modules at
call time, so no import cycle exists.
"""

from .cholqr import CholQRFactors, CholQRGuard, count_fallbacks, run_cholqr
from .plan import QRPlan, plan_qr
from .policy import (
    CHOLQR_PATHS,
    PATH_NAMES,
    ExecutionPolicy,
    resolve_executor_policy,
    resolve_policy,
)

__all__ = [
    "CHOLQR_PATHS",
    "PATH_NAMES",
    "CholQRFactors",
    "CholQRGuard",
    "ExecutionPolicy",
    "QRPlan",
    "count_fallbacks",
    "plan_qr",
    "resolve_executor_policy",
    "resolve_policy",
]
