"""Execution policies for the CAQR/TSQR stack.

An :class:`ExecutionPolicy` is the single source of truth for *how* a
factorization runs: which execution path, what panel/tree geometry, how
many workers, which non-finite policy, and which modeled device/kernel
configuration the cost model should use.  It replaces the five loose
kwargs (``batched``, ``structured``, ``lookahead``, ``workers``,
``nonfinite``) that every entry point used to plumb by hand.

The legacy kwargs are mapped onto policies in exactly one place —
:func:`resolve_policy` — which every shimmed entry point calls.  Passing
any of the path-selection kwargs emits a :class:`DeprecationWarning`;
geometry kwargs (``panel_width`` / ``block_rows`` / ``tree_shape``) map
silently since they stay meaningful per-call.

Path names
----------
``seed``
    The per-node reference implementation (``batched=False``), kept as
    the correctness oracle and benchmark baseline.
``batched``
    Level-batched compact-WY execution (the default).
``structured``
    Batched execution with the sparsity-exploiting stacked-triangle
    tree elimination.
``lookahead``
    The task-graph executor (:mod:`repro.graph.executor`); ``workers``
    sets the column tiling / thread-pool width and ``lookahead_edge``
    selects the look-ahead dependency edge vs the panel barrier.
``seed_structured``
    The oracle combination ``batched=False, structured=True`` — used
    only by the parity tests; not a production path.
``cholqr2``
    The BLAS3 fast path: CholeskyQR2 (two Gram/Cholesky/triangular
    passes, ~4mn^2 flops, O(1) kernel launches).  Condition-guarded —
    breaks down (raises) near ``cond(A) ~ 1/sqrt(eps)`` instead of
    silently losing orthogonality.
``cholqr2_mixed``
    CholeskyQR2 with a float32 first-pass Gram accumulation; the
    reorthogonalization pass runs in float64, restoring full
    orthogonality.  Guarded at the float32 condition limit.
``auto``
    Adaptive: runs ``cholqr2`` when a cheap condition estimate admits
    it and transparently falls back to ``lookahead`` otherwise
    (including on Cholesky breakdown mid-factorization).  Never
    raises on ill-conditioned input; ``condition_limit`` overrides the
    guard threshold.
``sharded``
    Multi-device parallel CAQR (:mod:`repro.distributed.sharded`): the
    matrix is row-partitioned across ``shards`` simulated ranks, each
    runs the local batched compact-WY machinery, and per-rank R factors
    reduce through a ``fanin``-ary tree over ``FakeComm``, with traffic
    charged to a calibrated ``interconnect`` alpha-beta model.
    Requires ``shards=``; ``fanin`` and ``interconnect`` are optional.
``streaming``
    Out-of-core sequential CAQR (:mod:`repro.streaming`): the tall axis
    is cut into ``chunk_rows``-row chunks, each chunk runs the local
    batched compact-WY machinery, and the chunk's R folds into the
    running n x n triangle through the same stacked-triangle
    elimination the tree nodes use — so resident memory is bounded by
    the chunk, not the stream.  Requires ``chunk_rows=``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Any

from repro.verify.guards import validate_nonfinite_policy

__all__ = [
    "PATH_NAMES",
    "CHOLQR_PATHS",
    "ExecutionPolicy",
    "resolve_policy",
    "resolve_executor_policy",
]

PATH_NAMES = (
    "seed",
    "batched",
    "structured",
    "lookahead",
    "seed_structured",
    "cholqr2",
    "cholqr2_mixed",
    "auto",
    "sharded",
    "streaming",
)

# The CholeskyQR2 family: condition-guarded BLAS3 fast paths.  ``auto``
# belongs here too — it *starts* on the cheap path and owns the fallback.
CHOLQR_PATHS = ("cholqr2", "cholqr2_mixed", "auto")

# Kwargs whose explicit use triggers a DeprecationWarning at the shims.
DEPRECATED_KWARGS = ("batched", "structured", "lookahead", "workers", "nonfinite")


class _Unset:
    """Sentinel distinguishing 'caller omitted' from any real value."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<unset>"


UNSET = _Unset()


def _is_set(value: Any) -> bool:
    return value is not UNSET


@dataclass(frozen=True)
class ExecutionPolicy:
    """How a factorization executes (everything except the matrix).

    Attributes:
        path: execution path name (see module docstring).
        panel_width / block_rows / tree_shape: numeric panel geometry.
            These are deliberately separate from ``config`` — the fuzz
            grid exercises geometries (e.g. ``block_rows < panel_width``,
            free-form tree names) that the modeled-domain
            :class:`~repro.kernels.config.KernelConfig` cannot represent.
        workers: column tiles per trailing update / thread-pool width for
            the look-ahead executor (``None`` means 1).  Only meaningful
            for ``path="lookahead"`` (and the threaded explicit-Q
            formation in the randomized SVD pipeline).
        lookahead_edge: wire ``factor(p+1)`` to the previous panel's
            first-tile update only (the look-ahead edge); ``False``
            restores the serial panel barrier.  Executor paths only.
        nonfinite: input guard policy (``"raise"`` / ``"propagate"``),
            see :mod:`repro.verify.guards`.
        device / config: modeled-domain device and kernel configuration
            used by ``plan.simulate()``; ``None`` resolves lazily to the
            C2050 reference setup so constructing a policy never imports
            the simulator stack.
        tuning: optional :class:`repro.tuning.cache.TuningCache` handle
            for callers that want sweep-informed geometry.
        condition_limit: guard threshold for the CholeskyQR2 paths —
            the largest Gram-diagonal condition estimate the cheap path
            accepts before raising (``cholqr2`` / ``cholqr2_mixed``) or
            falling back to ``lookahead`` (``auto``).  ``None`` resolves
            to the dtype-aware default inside
            :class:`repro.runtime.cholqr.CholQRGuard`.
        shards: simulated rank count for ``path="sharded"`` (required
            there, rejected elsewhere).  The effective count clamps to
            the row count at run time so tiny matrices never deal empty
            shards.
        fanin: reduction-tree arity for the sharded path (default 2,
            i.e. binomial); sharded-only.
        interconnect: name of a calibrated alpha-beta link model from
            ``repro.distributed.comm.INTERCONNECTS`` used to charge the
            sharded path's inter-rank traffic (default ``"pcie2"``);
            sharded-only.
        chunk_rows: tall-axis chunk height for ``path="streaming"``
            (required there, rejected elsewhere).  Each chunk is
            factored locally and folded into the running triangle, so
            this is the knob that trades per-chunk arithmetic
            efficiency against resident memory — the streaming path
            never holds more than one chunk plus the n x n carry.
        coalesce: whether a serving front end (:mod:`repro.serving`) may
            merge same-shape requests under this policy into one stacked
            batched invocation.  ``False`` forces per-request dispatch —
            results are bit-identical either way, so this is a latency /
            isolation knob, not a numerics one.  Ignored outside the
            serving layer.
        trace: optional :class:`repro.obs.TraceSession`; every
            policy-accepting entry point activates it for the duration of
            the call (``obs.maybe_trace``), so spans from each
            factorization under this policy accumulate into one capture.
            ``None`` (the default) keeps tracing disabled.
    """

    path: str = "batched"
    panel_width: int = 16
    block_rows: int = 64
    tree_shape: str = "quad"
    workers: int | None = None
    lookahead_edge: bool = True
    nonfinite: str = "raise"
    condition_limit: float | None = None
    shards: int | None = None
    fanin: int | None = None
    interconnect: str | None = None
    chunk_rows: int | None = None
    coalesce: bool = True
    device: Any | None = field(default=None, compare=False)
    config: Any | None = field(default=None, compare=False)
    tuning: Any | None = field(default=None, compare=False)
    trace: Any | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.path not in PATH_NAMES:
            raise ValueError(
                f"unknown execution path {self.path!r}; known: {PATH_NAMES}"
            )
        if self.panel_width < 1:
            raise ValueError("panel_width must be positive")
        if self.block_rows < 1:
            raise ValueError("block_rows must be positive")
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be positive")
        if self.effective_workers > 1 and self.path not in ("lookahead", "auto"):
            # "auto" may fall back to the executor, where workers applies.
            raise ValueError(
                f"workers > 1 requires path='lookahead' (or 'auto', whose "
                f"fallback is the look-ahead path), got path={self.path!r}"
            )
        if self.condition_limit is not None:
            if self.path not in CHOLQR_PATHS:
                raise ValueError(
                    f"condition_limit applies to the CholeskyQR2 paths "
                    f"{CHOLQR_PATHS}, got path={self.path!r}"
                )
            if not self.condition_limit > 0:
                raise ValueError("condition_limit must be positive")
        if self.path == "sharded":
            if self.shards is None:
                raise ValueError(
                    "path='sharded' requires shards= (the simulated rank count)"
                )
            if self.shards < 1:
                raise ValueError("shards must be positive")
        elif self.shards is not None:
            raise ValueError(
                f"shards applies only to path='sharded', got path={self.path!r}"
            )
        if self.fanin is not None:
            if self.path != "sharded":
                raise ValueError(
                    f"fanin applies only to path='sharded', got path={self.path!r}"
                )
            if self.fanin < 2:
                raise ValueError("fanin must be at least 2")
        if self.path == "streaming":
            if self.chunk_rows is None:
                raise ValueError(
                    "path='streaming' requires chunk_rows= (the tall-axis "
                    "chunk height)"
                )
            if self.chunk_rows < 1:
                raise ValueError("chunk_rows must be positive")
        elif self.chunk_rows is not None:
            raise ValueError(
                f"chunk_rows applies only to path='streaming', "
                f"got path={self.path!r}"
            )
        if self.interconnect is not None:
            if self.path != "sharded":
                raise ValueError(
                    f"interconnect applies only to path='sharded', "
                    f"got path={self.path!r}"
                )
            from repro.distributed.comm import INTERCONNECTS

            if self.interconnect not in INTERCONNECTS:
                raise ValueError(
                    f"unknown interconnect {self.interconnect!r}; "
                    f"known: {tuple(INTERCONNECTS)}"
                )
        validate_nonfinite_policy(self.nonfinite, "ExecutionPolicy")

    # -- derived views -----------------------------------------------------

    @property
    def effective_workers(self) -> int:
        return 1 if self.workers is None else self.workers

    @property
    def uses_batched(self) -> bool:
        """Whether the compact-WY batched kernels run (vs the seed loop)."""
        return self.path not in ("seed", "seed_structured")

    @property
    def uses_structured(self) -> bool:
        """Whether tree nodes use the stacked-triangle elimination."""
        return self.path in ("structured", "seed_structured")

    @property
    def uses_cholqr(self) -> bool:
        """Whether the CholeskyQR2 fast-path engine runs first."""
        return self.path in CHOLQR_PATHS

    @property
    def effective_fanin(self) -> int:
        """Sharded reduction-tree arity (binomial when unset)."""
        return 2 if self.fanin is None else self.fanin

    def resolved_interconnect(self):
        """The calibrated link model for the sharded path's traffic."""
        from repro.distributed.comm import DEFAULT_INTERCONNECT, INTERCONNECTS

        return INTERCONNECTS[self.interconnect or DEFAULT_INTERCONNECT]

    def resolved_device(self):
        """The modeled device (C2050 unless overridden)."""
        if self.device is not None:
            return self.device
        from repro.gpusim.device import C2050

        return C2050

    def resolved_config(self):
        """The modeled kernel configuration (reference unless overridden)."""
        if self.config is not None:
            return self.config
        from repro.kernels.config import REFERENCE_CONFIG

        return REFERENCE_CONFIG

    def with_nonfinite(self, nonfinite: str) -> "ExecutionPolicy":
        """Copy with a different guard policy (internal re-entry helper)."""
        if nonfinite == self.nonfinite:
            return self
        return replace(self, nonfinite=nonfinite)

    # -- legacy kwarg mapping ----------------------------------------------

    @classmethod
    def from_legacy(
        cls,
        base: "ExecutionPolicy | None" = None,
        *,
        batched: Any = UNSET,
        structured: Any = UNSET,
        lookahead: Any = UNSET,
        workers: Any = UNSET,
        nonfinite: Any = UNSET,
        panel_width: Any = UNSET,
        block_rows: Any = UNSET,
        tree_shape: Any = UNSET,
    ) -> "ExecutionPolicy":
        """Map the pre-policy kwargs onto a policy (no warnings here).

        Unset values inherit from ``base`` (default: a fresh default
        policy), so a caller that only overrides ``workers`` keeps the
        base's geometry and guard policy.  The error cases reproduce the
        pre-policy entry points exactly: ``structured`` and
        ``batched=False`` are rejected in combination with look-ahead.
        """
        base = base if base is not None else cls()
        b = batched if _is_set(batched) else base.uses_batched
        s = structured if _is_set(structured) else base.uses_structured
        la = lookahead if _is_set(lookahead) else (
            base.path == "lookahead" and base.lookahead_edge
        )
        w = workers if _is_set(workers) else base.workers
        if la or (w is not None and w > 1):
            if s:
                raise ValueError(
                    "structured tree elimination is not supported with lookahead"
                )
            if not b:
                raise ValueError("lookahead requires the batched execution path")
            path = "lookahead"
        elif s:
            path = "structured" if b else "seed_structured"
        else:
            path = "batched" if b else "seed"
        return replace(
            base,
            path=path,
            workers=w,
            lookahead_edge=bool(la) if path == "lookahead" else True,
            nonfinite=nonfinite if _is_set(nonfinite) else base.nonfinite,
            panel_width=panel_width if _is_set(panel_width) else base.panel_width,
            block_rows=block_rows if _is_set(block_rows) else base.block_rows,
            tree_shape=tree_shape if _is_set(tree_shape) else base.tree_shape,
        )


def _warn_deprecated(where: str, names: list[str], stacklevel: int) -> None:
    warnings.warn(
        f"{where}: the {', '.join(names)} keyword"
        f"{'s are' if len(names) > 1 else ' is'} deprecated; pass "
        "policy=repro.runtime.ExecutionPolicy(...) instead "
        "(see docs/architecture.md, 'Execution policy & plans')",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def _check_no_mixing(where: str, explicit: dict) -> None:
    if explicit:
        raise ValueError(
            f"{where}: pass either policy= or the legacy keywords "
            f"({', '.join(sorted(explicit))}), not both"
        )


def resolve_policy(
    where: str,
    policy: ExecutionPolicy | None = None,
    *,
    batched: Any = UNSET,
    structured: Any = UNSET,
    lookahead: Any = UNSET,
    workers: Any = UNSET,
    nonfinite: Any = UNSET,
    panel_width: Any = UNSET,
    block_rows: Any = UNSET,
    tree_shape: Any = UNSET,
    default: ExecutionPolicy | None = None,
    stacklevel: int = 4,
) -> ExecutionPolicy:
    """The legacy-kwarg shim every policy-accepting entry point uses.

    ``policy`` wins when given (mixing it with any legacy kwarg is an
    error); otherwise the legacy kwargs are mapped onto ``default`` via
    :meth:`ExecutionPolicy.from_legacy`, warning once per call for the
    deprecated path-selection kwargs (geometry kwargs map silently).
    """
    explicit = {
        name: value
        for name, value in (
            ("batched", batched),
            ("structured", structured),
            ("lookahead", lookahead),
            ("workers", workers),
            ("nonfinite", nonfinite),
            ("panel_width", panel_width),
            ("block_rows", block_rows),
            ("tree_shape", tree_shape),
        )
        if _is_set(value)
    }
    if policy is not None:
        _check_no_mixing(where, explicit)
        return policy
    deprecated = sorted(set(explicit) & set(DEPRECATED_KWARGS))
    if deprecated:
        _warn_deprecated(where, deprecated, stacklevel)
    return ExecutionPolicy.from_legacy(
        default,
        batched=batched,
        structured=structured,
        lookahead=lookahead,
        workers=workers,
        nonfinite=nonfinite,
        panel_width=panel_width,
        block_rows=block_rows,
        tree_shape=tree_shape,
    )


def resolve_executor_policy(
    where: str,
    policy: ExecutionPolicy | None = None,
    *,
    workers: Any = UNSET,
    lookahead: Any = UNSET,
    nonfinite: Any = UNSET,
    panel_width: Any = UNSET,
    block_rows: Any = UNSET,
    tree_shape: Any = UNSET,
    stacklevel: int = 4,
) -> ExecutionPolicy:
    """Shim for :func:`repro.graph.executor.caqr_lookahead`.

    The executor entry is always the look-ahead path; its legacy
    ``lookahead`` kwarg selects the look-ahead *edge* (vs the panel
    barrier), not the path, so it maps to ``lookahead_edge``.
    """
    explicit = {
        name: value
        for name, value in (
            ("workers", workers),
            ("lookahead", lookahead),
            ("nonfinite", nonfinite),
            ("panel_width", panel_width),
            ("block_rows", block_rows),
            ("tree_shape", tree_shape),
        )
        if _is_set(value)
    }
    if policy is not None:
        _check_no_mixing(where, explicit)
        if policy.path != "lookahead":
            raise ValueError(
                f"{where}: the executor runs the 'lookahead' path, "
                f"got policy.path={policy.path!r}"
            )
        return policy
    deprecated = sorted(set(explicit) & set(DEPRECATED_KWARGS))
    if deprecated:
        _warn_deprecated(where, deprecated, stacklevel)
    w = workers if _is_set(workers) else None
    if w is not None and w < 1:
        raise ValueError("workers must be positive")
    return ExecutionPolicy(
        path="lookahead",
        workers=w,
        lookahead_edge=bool(lookahead) if _is_set(lookahead) else True,
        nonfinite=nonfinite if _is_set(nonfinite) else "raise",
        panel_width=panel_width if _is_set(panel_width) else 16,
        block_rows=block_rows if _is_set(block_rows) else 64,
        tree_shape=tree_shape if _is_set(tree_shape) else "quad",
    )
