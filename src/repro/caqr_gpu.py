"""GPU CAQR driver — the host pseudocode of Figure 4, simulated.

This module turns the CAQR algorithm into the exact stream of kernel
launches the paper's host CPU issues::

    Foreach panel:
        (transpose preprocessing, when the tuned layout is used)
        factor            # small QRs in the panel
        Foreach level in tree:
            factor_tree   # small QRs of stacked Rs
        apply_qt_h        # horizontal trailing update
        Foreach level in tree:
            apply_qt_tree # tree trailing update

Two entry points share one schedule generator, so their timelines are
identical by construction:

* :func:`simulate_caqr` — shape arithmetic only; usable at paper scale
  (1M x 192 and beyond) where materializing the matrix is pointless.
* :func:`caqr_gpu_factor` — runs the real factorization (NumPy math via
  :mod:`repro.core.caqr`) *and* produces the same timeline; used at test
  scale to tie numerics and cost model together.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Iterator

import numpy as np

from .core.caqr import CAQRFactors, caqr
from .runtime.policy import UNSET, ExecutionPolicy, resolve_policy
from .core.householder import qr_flops
from .core.tree import build_tree
from .core.tsqr import row_blocks
from .gpusim.counters import Counters
from .gpusim.device import C2050, DeviceSpec
from .gpusim.launch import LaunchSpec, occupancy_blocks_per_sm
from .gpusim.timeline import Timeline
from .kernels.config import REFERENCE_CONFIG, KernelConfig
from .kernels.costs import (
    apply_qt_h_launch,
    apply_qt_tree_launch,
    chol_launch,
    factor_launch,
    factor_tree_launch,
    gram_launch,
    scale_launch,
    transpose_launch,
    trsm_launch,
)
from .verify.guards import validate_matrix

__all__ = [
    "CAQRGpuResult",
    "ShardedGpuResult",
    "enumerate_caqr_launches",
    "enumerate_cholqr2_launches",
    "simulate_caqr",
    "simulate_cholqr2",
    "simulate_form_q",
    "simulate_sharded",
    "caqr_gpu_factor",
    "caqr_gflops",
]


@dataclass
class CAQRGpuResult:
    """Outcome of a simulated GPU CAQR factorization.

    ``overlap`` is populated only when the simulation was asked for
    concurrent streams (``streams=``): it carries the launch DAG and the
    list-scheduled multi-stream timing next to the serial ``timeline``
    (which always remains the default, fingerprinted stream).
    """

    m: int
    n: int
    config: KernelConfig
    device: DeviceSpec
    timeline: Timeline
    overlap: "object | None" = None  # repro.graph.overlap.OverlapResult

    @property
    def seconds(self) -> float:
        return self.timeline.total_seconds

    @property
    def overlap_seconds(self) -> float | None:
        """Modeled seconds on concurrent streams (None when serial-only)."""
        return None if self.overlap is None else self.overlap.overlap_seconds

    @property
    def counters(self) -> Counters:
        return self.timeline.counters

    @property
    def standard_flops(self) -> float:
        """The SGEQRF flop count the paper divides by (not CAQR's actual)."""
        return qr_flops(self.m, self.n)

    @property
    def gflops(self) -> float:
        return self.standard_flops / self.seconds / 1e9

    @property
    def flop_overhead(self) -> float:
        """Ratio of flops actually performed to the standard count —
        CAQR's redundant tree arithmetic made visible."""
        return self.counters.flops / self.standard_flops

    def breakdown(self) -> dict[str, float]:
        return self.timeline.seconds_by_kernel()


def _tile_width(wt: int, bh: int, cfg: KernelConfig, dev: DeviceSpec) -> int:
    """Trailing-tile width for the update kernels.

    A wider tile applies each reflector to more columns per block,
    amortizing the reflector broadcast and partial reductions — the
    update drifts toward BLAS3 efficiency exactly when the trailing
    matrix is wide — but costs register-file occupancy.  The driver picks
    the candidate with the best modeled per-SM throughput (occupancy
    included), honoring a fixed ``cfg.tile_width`` for ablations.
    """
    if cfg.tile_width is not None:
        return cfg.tile_width
    best, best_rate = cfg.panel_width, 0.0
    for cand in (cfg.panel_width, 32, 64):
        if cand < cfg.panel_width:
            continue
        # A wider tile only pays off when the trailing matrix is wide
        # enough to fill the grid with such tiles.
        if cand > cfg.panel_width and wt < 8 * cand:
            continue
        spec = apply_qt_h_launch(1, bh, cfg.panel_width, cand, cfg, dev)
        try:
            bps = occupancy_blocks_per_sm(spec, dev)
        except ValueError:
            continue  # block does not fit on an SM
        eff = min(1.0, spec.threads_per_block / 32.0 * bps / dev.min_warps_full_rate)
        rate = spec.flops_per_block / (spec.cycles_per_block / eff)
        if rate > best_rate:
            best, best_rate = cand, rate
    return best


def enumerate_caqr_launches(
    m: int,
    n: int,
    cfg: KernelConfig = REFERENCE_CONFIG,
    dev: DeviceSpec = C2050,
) -> Iterator[LaunchSpec]:
    """Yield every kernel launch of a CAQR factorization, in host order."""
    if m < 1 or n < 1:
        raise ValueError("matrix dimensions must be positive")
    k = min(m, n)
    pw = cfg.panel_width
    for c0 in range(0, k, pw):
        pw_p = min(pw, k - c0)
        r0 = c0  # the grid is redrawn lower by the panel width
        hp = m - r0
        bh = max(cfg.block_rows, pw_p)
        blocks = row_blocks(hp, bh)
        nb0 = len(blocks)
        tree = build_tree(nb0, cfg.tree_shape)
        tag = f"panel{c0 // pw}"
        if cfg.transpose_preprocess and cfg.strategy == "regfile_transpose":
            yield transpose_launch(hp, pw_p, cfg, dev, tag=tag)
        yield factor_launch(nb0, bh, pw_p, cfg, dev, tag=tag)
        level_arities = tree.level_arities()
        for lvl, level in enumerate(tree.levels):
            yield factor_tree_launch(
                len(level), level_arities[lvl], pw_p, cfg, dev, tag=f"{tag}/L{lvl}"
            )
        wt = n - (c0 + pw_p)
        if wt > 0:
            tile_w = _tile_width(wt, bh, cfg, dev)
            tiles = math.ceil(wt / tile_w)
            yield apply_qt_h_launch(nb0 * tiles, bh, pw_p, tile_w, cfg, dev, tag=tag)
            for lvl, level in enumerate(tree.levels):
                yield apply_qt_tree_launch(
                    len(level) * tiles, level_arities[lvl], pw_p, tile_w, cfg, dev, tag=f"{tag}/L{lvl}"
                )


def simulate_caqr(
    m: int,
    n: int,
    cfg: KernelConfig = REFERENCE_CONFIG,
    dev: DeviceSpec = C2050,
    streams: int | None = None,
    lookahead: bool = True,
) -> CAQRGpuResult:
    """Simulate a full CAQR factorization of an ``m x n`` matrix.

    The matrix is assumed resident in GPU memory (the paper does not count
    the initial transfer; Section V-C).  Pure shape arithmetic — no arrays
    are materialized, so this runs at any paper scale.

    ``streams`` (opt-in) additionally list-schedules the launch DAG onto
    that many concurrent streams and attaches the
    :class:`~repro.graph.overlap.OverlapResult` as ``result.overlap``;
    ``lookahead`` controls whether the DAG carries the look-ahead edge or
    the serial panel barrier.  The serial ``timeline`` is built the same
    way regardless, so fingerprints never move.
    """
    tl = Timeline(device=dev)
    for spec in enumerate_caqr_launches(m, n, cfg, dev):
        tl.launch(spec)
    res = CAQRGpuResult(m=m, n=n, config=cfg, device=dev, timeline=tl)
    if streams is not None and streams > 1:
        # Deferred: repro.graph sits above this module in the layering.
        from repro.graph.overlap import simulate_caqr_overlap

        res.overlap = simulate_caqr_overlap(
            m, n, cfg, dev, streams=streams, lookahead=lookahead
        )
    return res


def enumerate_cholqr2_launches(
    m: int,
    n: int,
    cfg: KernelConfig = REFERENCE_CONFIG,
    dev: DeviceSpec = C2050,
    mixed: bool = False,
    guard: bool = False,
) -> Iterator[LaunchSpec]:
    """Yield every kernel launch of a CholeskyQR2 factorization.

    The canonical stream is O(1) launches regardless of ``m``::

        scale                      # column equilibration W = A / s
        (guard gram + guard chol)  # row-sampled precheck, path="auto" only
        gram -> chol -> trsm       # pass 1
        gram -> chol -> trsm       # pass 2 (reorthogonalization)

    The host-side fused small-matrix algebra (skipping the second syrk
    when the condition estimate is tiny) is a CPU-side rewrite of the
    same pass-2 work; the modeled device stream stays the canonical
    two-pass form so fingerprints are pure functions of
    ``(shape, mixed, guard)``.  ``mixed`` halves the pass-1 Gram traffic
    and GEMM cycles (float32 accumulation of a float64 input); the
    Cholesky smalls and both m x n triangular applies stay full
    precision, matching the numeric engine.
    """
    if m < 1 or n < 1:
        raise ValueError("matrix dimensions must be positive")
    k = min(m, n)
    yield scale_launch(m, k, cfg, dev, tag="scale")
    if guard and m >= 16 * k:
        # Row-sampled condition precheck: a ~(8k) x k Gram plus its
        # Cholesky, ~1% of the full pass-1 cost.
        yield gram_launch(8 * k, k, cfg, dev, tag="guard")
        yield chol_launch(k, cfg, dev, tag="guard")
    for p in (1, 2):
        g = gram_launch(m, k, cfg, dev, tag=f"pass{p}")
        if mixed and p == 1:
            g = replace(
                g,
                cycles_per_block=g.cycles_per_block * 0.5,
                read_bytes_per_block=g.read_bytes_per_block * 0.5,
                write_bytes_per_block=g.write_bytes_per_block * 0.5,
            )
        yield g
        yield chol_launch(k, cfg, dev, tag=f"pass{p}")
        yield trsm_launch(m, k, cfg, dev, tag=f"pass{p}")


def simulate_cholqr2(
    m: int,
    n: int,
    cfg: KernelConfig = REFERENCE_CONFIG,
    dev: DeviceSpec = C2050,
    mixed: bool = False,
    guard: bool = False,
) -> CAQRGpuResult:
    """Simulate a CholeskyQR2 factorization of an ``m x n`` matrix.

    Pure shape arithmetic, like :func:`simulate_caqr`; the wide case
    models the leading ``m x m`` square factorization (the trailing
    ``R[:, m:]`` GEMM is not on the fingerprinted stream, mirroring how
    the Householder paths fingerprint only the factorization kernels).
    ``gflops`` stays normalized by the standard SGEQRF flop count so the
    paths are directly comparable.
    """
    tl = Timeline(device=dev)
    for spec in enumerate_cholqr2_launches(m, n, cfg, dev, mixed=mixed, guard=guard):
        tl.launch(spec)
    return CAQRGpuResult(m=m, n=n, config=cfg, device=dev, timeline=tl)


@dataclass
class ShardedGpuResult:
    """Modeled cost of a sharded multi-device CAQR run.

    Per-device compute comes from :func:`simulate_caqr` on the tallest
    shard (the critical rank — shards run concurrently); the fan-in
    reduction adds, per round, the modeled QR of the stacked triangles
    plus the alpha-beta time of moving them over the interconnect.  Pure
    shape arithmetic, so it runs at the 2,000,000 x 1000 target scale.
    """

    m: int
    n: int
    shards: int
    fanin: int
    interconnect: object  # repro.distributed.comm.InterconnectModel
    local: CAQRGpuResult  # tallest shard's modeled factorization
    reduce_seconds: float
    network_seconds: float
    network_messages: int
    network_words: float
    levels: int

    @property
    def seconds(self) -> float:
        return self.local.seconds + self.reduce_seconds + self.network_seconds

    @property
    def standard_flops(self) -> float:
        return qr_flops(self.m, self.n)

    @property
    def gflops(self) -> float:
        return self.standard_flops / self.seconds / 1e9

    def breakdown(self) -> dict[str, float]:
        return {
            "shard_local": self.local.seconds,
            "reduce_compute": self.reduce_seconds,
            "network": self.network_seconds,
        }


def simulate_sharded(
    m: int,
    n: int,
    cfg: KernelConfig = REFERENCE_CONFIG,
    dev: DeviceSpec = C2050,
    shards: int = 4,
    fanin: int = 2,
    interconnect=None,
) -> ShardedGpuResult:
    """Simulate sharded CAQR: P concurrent devices + a fan-in R reduction.

    The critical path is the tallest shard's local CAQR, then one
    stacked-triangle QR and one round of triangle transfers per
    reduction level.  The reduction QRs reuse :func:`simulate_caqr` (one
    model, every path); traffic is charged ``alpha + beta * words`` on
    the busiest rank of each round, mirroring
    ``FakeComm.critical_path_words`` on the executed path.
    """
    if m < 1 or n < 1:
        raise ValueError("matrix dimensions must be positive")
    from repro.distributed.comm import INTERCONNECTS
    from repro.distributed.sharded import build_shard_schedule

    if interconnect is None:
        interconnect = INTERCONNECTS["pcie2"]
    schedule = build_shard_schedule(m, n, shards, fanin)
    s0, e0 = schedule.rows[0]  # tallest shard
    local = simulate_caqr(e0 - s0, n, cfg, dev)
    tri_h = min(n, e0 - s0)  # R-triangle height each rank contributes
    tri_words = tri_h * n - tri_h * (tri_h - 1) / 2.0  # trapezoid entries
    reduce_seconds = 0.0
    messages = 0
    words = 0.0
    for merges in schedule.rounds:
        arity = max(len(srcs) for _dst, srcs in merges) + 1
        stack_rows = max(1, arity * tri_h)
        reduce_seconds += simulate_caqr(stack_rows, n, cfg, dev).seconds
        messages += arity - 1
        words += (arity - 1) * tri_words
    return ShardedGpuResult(
        m=m,
        n=n,
        shards=schedule.shards,
        fanin=schedule.fanin,
        interconnect=interconnect,
        local=local,
        reduce_seconds=reduce_seconds,
        network_seconds=interconnect.seconds(messages, words),
        network_messages=messages,
        network_words=words,
        levels=schedule.levels,
    )


def simulate_form_q(
    m: int,
    n: int,
    cfg: KernelConfig = REFERENCE_CONFIG,
    dev: DeviceSpec = C2050,
) -> CAQRGpuResult:
    """Simulate forming the explicit thin Q (SORGQR-equivalent).

    "Retrieving Q explicitly (SORGQR) using CAQR is just as efficient as
    factoring the matrix" (Section V-C): the same kernels are applied to
    an m x n identity-extended matrix in reverse order, so the launch
    stream — and therefore the model — is the factorization's.
    """
    res = simulate_caqr(m, n, cfg, dev)
    return CAQRGpuResult(m=m, n=n, config=cfg, device=dev, timeline=res.timeline)


def caqr_gpu_factor(
    A: np.ndarray,
    cfg: KernelConfig = REFERENCE_CONFIG,
    dev: DeviceSpec = C2050,
    batched: bool = UNSET,
    lookahead: bool = UNSET,
    workers: int | None = UNSET,
    streams: int | None = None,
    nonfinite: str = UNSET,
    policy: ExecutionPolicy | None = None,
) -> tuple[CAQRFactors, CAQRGpuResult]:
    """Execute CAQR numerically *and* produce its simulated GPU timeline.

    The factor structure (panel row-blocking and reduction-tree schedule)
    is built by the same :mod:`repro.core` helpers the launch enumerator
    uses, so the counts agree by construction; a structural-parity test
    pins this.  The numeric execution strategy comes from ``policy`` (or
    the deprecated ``batched``/``lookahead``/``workers``/``nonfinite``
    shims); the panel geometry always follows ``cfg``, keeping numerics
    and modeled timeline on the same schedule.  ``streams`` attaches the
    modeled multi-stream overlap to the result.  The serial simulated
    timeline depends purely on shapes and is identical in every mode.
    """
    default = ExecutionPolicy(
        path="structured" if cfg.structured_tree else "batched",
        panel_width=cfg.panel_width,
        block_rows=cfg.block_rows,
        tree_shape=cfg.tree_shape,
        device=dev,
        config=cfg,
    )
    policy = resolve_policy(
        "caqr_gpu_factor",
        policy,
        batched=batched,
        lookahead=lookahead,
        workers=workers,
        nonfinite=nonfinite,
        default=default,
    )
    # The timeline below is enumerated from ``cfg``; pin the numeric
    # geometry to it so both always run the same schedule.
    policy = replace(
        policy,
        panel_width=cfg.panel_width,
        block_rows=cfg.block_rows,
        tree_shape=cfg.tree_shape,
    )
    A = validate_matrix(A, where="caqr_gpu_factor", nonfinite=policy.nonfinite)
    m, n = A.shape
    factors = caqr(A, policy=policy.with_nonfinite("propagate"))
    result = simulate_caqr(m, n, cfg, dev, streams=streams)
    return factors, result


def caqr_gflops(
    m: int,
    n: int,
    cfg: KernelConfig = REFERENCE_CONFIG,
    dev: DeviceSpec = C2050,
) -> float:
    """Convenience: modeled SGEQRF GFLOP/s for one matrix size."""
    return simulate_caqr(m, n, cfg, dev).gflops
