"""Modeled-vs-measured overlay: align a measured trace with the simulator.

The paper's performance argument is phase-structured — panel
factorization (``factor`` + ``factor_tree`` launches) vs trailing update
(``apply_qt_h`` + ``apply_qt_tree``) — and the GPU cost model predicts a
time for each.  The host NumPy execution measures real seconds for the
same phases.  This module aligns the two for one plan/shape and reports
**per-phase model error**: where the modeled time-share disagrees with
the measured one, the cost model (or the implementation) is lying about
where communication costs land.

Absolute seconds are expected to disagree wildly (the model prices a
Fermi C2050, the measurement is host NumPy); the honest, comparable
quantity is each phase's *share* of total time, plus the uniform
measured/modeled speed ratio.  Both are reported; ``share_error`` is the
headline number.
"""

from __future__ import annotations

from dataclasses import dataclass

from .tracer import Trace

__all__ = ["PhaseComparison", "ModelOverlay", "modeled_vs_measured", "format_overlay"]


# Phase -> (modeled kernel names, measured span categories).
PHASES: dict[str, tuple[tuple[str, ...], tuple[str, ...]]] = {
    "factor": (("transpose", "factor", "factor_tree"), ("factor",)),
    "update": (("apply_qt_h", "apply_qt_tree"), ("update",)),
}

# Finer-grained sub-phases, reported when the measured trace carries
# the corresponding categories (the instrumented kernels emit them).
SUBPHASES: dict[str, tuple[tuple[str, ...], tuple[str, ...]]] = {
    "factor.level0": (("transpose", "factor"), ("factor.level0",)),
    "factor.tree": (("factor_tree",), ("factor.tree",)),
    "update.level0": (("apply_qt_h",), ("apply.level0",)),
    "update.tree": (("apply_qt_tree",), ("apply.tree",)),
}


@dataclass(frozen=True)
class PhaseComparison:
    """One phase's modeled and measured time, with share-level error."""

    phase: str
    modeled_seconds: float
    measured_seconds: float
    modeled_share: float
    measured_share: float

    @property
    def speed_ratio(self) -> float:
        """Measured seconds per modeled second (host-vs-GPU slowdown)."""
        return self.measured_seconds / self.modeled_seconds if self.modeled_seconds else float("inf")

    @property
    def share_error(self) -> float:
        """Absolute difference of time shares — the model-error headline."""
        return abs(self.measured_share - self.modeled_share)


@dataclass(frozen=True)
class ModelOverlay:
    """The aligned modeled/measured breakdown for one shape."""

    phases: list
    subphases: list
    modeled_total: float
    measured_total: float

    @property
    def speed_ratio(self) -> float:
        return self.measured_total / self.modeled_total if self.modeled_total else float("inf")

    @property
    def max_share_error(self) -> float:
        return max((p.share_error for p in self.phases), default=0.0)


def _measured_by_cat(trace: Trace) -> dict:
    return trace.seconds_by_cat()


def _modeled_by_kernel(timeline) -> dict:
    return timeline.seconds_by_kernel()


def _compare(
    table: dict, modeled: dict, measured: dict, modeled_total: float, measured_total: float
) -> list:
    rows = []
    for phase, (kernels, cats) in table.items():
        mod = sum(modeled.get(k, 0.0) for k in kernels)
        mea = sum(measured.get(c, 0.0) for c in cats)
        rows.append(
            PhaseComparison(
                phase=phase,
                modeled_seconds=mod,
                measured_seconds=mea,
                modeled_share=mod / modeled_total if modeled_total else 0.0,
                measured_share=mea / measured_total if measured_total else 0.0,
            )
        )
    return rows


def modeled_vs_measured(trace: Trace, timeline) -> ModelOverlay:
    """Align a measured :class:`Trace` against a simulated ``Timeline``.

    ``timeline`` is a :class:`~repro.gpusim.timeline.Timeline` (or a
    :class:`~repro.caqr_gpu.CAQRGpuResult`, whose ``timeline`` is used)
    for the *same shape and geometry* — typically ``plan.simulate()``
    next to a traced ``plan.factor``.
    """
    tl = getattr(timeline, "timeline", timeline)
    modeled = _modeled_by_kernel(tl)
    measured = _measured_by_cat(trace)
    # Phase totals, not wall time: the shares then compare like for like
    # even when the measured trace includes planning/validation spans the
    # model does not price.
    modeled_total = sum(
        sum(modeled.get(k, 0.0) for k in kernels) for kernels, _ in PHASES.values()
    )
    measured_total = sum(
        sum(measured.get(c, 0.0) for c in cats) for _, cats in PHASES.values()
    )
    phases = _compare(PHASES, modeled, measured, modeled_total, measured_total)
    sub = [
        row
        for row in _compare(SUBPHASES, modeled, measured, modeled_total, measured_total)
        if row.measured_seconds > 0.0
    ]
    return ModelOverlay(
        phases=phases,
        subphases=sub,
        modeled_total=modeled_total,
        measured_total=measured_total,
    )


def format_overlay(overlay: ModelOverlay, title: str | None = None) -> str:
    """Human-readable per-phase model-error table."""
    lines = [title or "modeled vs measured (per-phase)"]
    lines.append(
        f"  totals: modeled {overlay.modeled_total * 1e3:9.3f} ms, "
        f"measured {overlay.measured_total * 1e3:9.3f} ms "
        f"(host/model speed ratio {overlay.speed_ratio:.1f}x)"
    )
    header = f"  {'phase':<14} {'modeled':>11} {'measured':>11} {'mod share':>9} {'mea share':>9} {'share err':>9}"
    lines.append(header)
    for row in overlay.phases + overlay.subphases:
        lines.append(
            f"  {row.phase:<14} {row.modeled_seconds * 1e3:9.3f} ms {row.measured_seconds * 1e3:9.3f} ms "
            f"{row.modeled_share:>8.1%} {row.measured_share:>8.1%} {row.share_error:>8.1%}"
        )
    lines.append(f"  max per-phase share error: {overlay.max_share_error:.1%}")
    return "\n".join(lines)
