"""Runtime observability: span tracing for the measured execution paths.

``repro.obs`` is the measured-side counterpart of the simulator's
profiling (:mod:`repro.gpusim.trace`):

* :func:`capture` / :func:`span` / :func:`counters` — a low-overhead
  span tracer (context-var span stack, monotonic clocks, per-span
  counters) wired into the executor, the TSQR/CAQR kernels, plans, the
  dispatcher and the guard layer.  Zero overhead when disabled.
* :func:`to_chrome_trace` / :func:`write_chrome_trace` — Chrome
  ``trace_event`` export, loadable in Perfetto.
* :func:`span_summary` / :func:`render_spans` — per-span aggregate
  tables matching the simulator's profiler shapes.
* :func:`modeled_vs_measured` / :func:`format_overlay` — align a
  measured trace against the GPU cost model's timeline for the same
  plan and report per-phase model error.
* :func:`from_timeline` — lift a simulated timeline into a trace so the
  same exporters serve both domains.

Entry points: ``python -m repro trace`` from a shell,
``obs.capture()`` around any library call, or
``ExecutionPolicy(trace=obs.capture())`` to hand a session to every
call that runs under the policy.

This package imports only the standard library (the guard and policy
layers call into it), so it sits at the bottom of the import graph.
"""

from .compare import ModelOverlay, PhaseComparison, format_overlay, modeled_vs_measured
from .export import (
    from_timeline,
    render_spans,
    span_summary,
    tenant_summary,
    to_chrome_trace,
    write_chrome_trace,
)
from .tracer import (
    Span,
    Trace,
    TraceSession,
    capture,
    counters,
    enabled,
    maybe_trace,
    span,
)

__all__ = [
    "ModelOverlay",
    "PhaseComparison",
    "Span",
    "Trace",
    "TraceSession",
    "capture",
    "counters",
    "enabled",
    "format_overlay",
    "from_timeline",
    "maybe_trace",
    "modeled_vs_measured",
    "render_spans",
    "span",
    "span_summary",
    "tenant_summary",
    "to_chrome_trace",
    "write_chrome_trace",
]
