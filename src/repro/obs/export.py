"""Trace exporters: Chrome ``trace_event`` JSON and profiler tables.

Two consumers, two shapes:

* :func:`to_chrome_trace` / :func:`write_chrome_trace` — the Chrome
  ``trace_event`` format (``ph: "X"`` complete events with ``pid`` /
  ``tid`` / ``ts`` / ``dur`` in microseconds), loadable in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``.  Thread-name
  metadata events label the capturing thread and each pool worker, so
  look-ahead overlap is visible as parallel tracks.
* :func:`span_summary` / :func:`render_spans` — the per-name aggregate
  table and ASCII time-share chart, deliberately the same row shape as
  :func:`repro.gpusim.trace.kernel_summary` /
  :func:`~repro.gpusim.trace.render_profile` so measured and modeled
  profiles read side by side.

:func:`from_timeline` closes the loop in the other direction: it lifts a
simulated :class:`~repro.gpusim.timeline.Timeline` into a :class:`Trace`
(one span per event, counters preserved), so every exporter and the
modeled-vs-measured overlay work on simulator output too.
"""

from __future__ import annotations

import json
from pathlib import Path

from .tracer import Span, Trace

__all__ = [
    "from_timeline",
    "render_spans",
    "span_summary",
    "tenant_summary",
    "to_chrome_trace",
    "write_chrome_trace",
]


def to_chrome_trace(trace: Trace, pid: int = 1) -> dict:
    """The trace as a Chrome ``trace_event`` JSON-object document.

    Timestamps are microseconds relative to the capture start (Perfetto
    renders absolute ns poorly); counters and args merge into each
    event's ``args``.  Span nesting is implied by containment, which is
    exact because every child interval lies inside its parent's.
    """
    events: list[dict] = []
    for tid, name in sorted(trace.thread_names.items()):
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": name},
            }
        )
    for s in sorted(trace.spans, key=lambda s: (s.tid, s.start_ns)):
        args = {**s.args, **s.counters}
        events.append(
            {
                "ph": "X",
                "pid": pid,
                "tid": s.tid,
                "ts": (s.start_ns - trace.start_ns) / 1e3,
                "dur": s.dur_ns / 1e3,
                "name": s.name,
                "cat": s.cat or "span",
                "args": args,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {str(k): str(v) for k, v in trace.meta.items()},
    }


def write_chrome_trace(trace: Trace, path) -> Path:
    """Serialize :func:`to_chrome_trace` output to ``path``; returns it."""
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(trace), indent=1) + "\n")
    return path


def span_summary(trace: Trace) -> list[dict]:
    """Per-name aggregates, sorted by time descending.

    Same shape as :func:`repro.gpusim.trace.kernel_summary`: ``name`` /
    ``kind`` (the span category) / ``seconds`` / ``share`` / ``events``,
    plus the summed per-span counters.  ``share`` is against the wall
    time of the capture; nested spans each count their own time, so
    shares can sum past 1.0 exactly like a sampling profiler's inclusive
    view.
    """
    agg: dict[str, dict] = {}
    for s in trace.spans:
        d = agg.setdefault(
            s.name,
            {"name": s.name, "kind": s.cat, "seconds": 0.0, "events": 0, "counters": {}},
        )
        d["seconds"] += s.seconds
        d["events"] += 1
        for k, v in s.counters.items():
            d["counters"][k] = d["counters"].get(k, 0) + v
    total = trace.wall_seconds or 1.0
    rows = []
    for d in agg.values():
        rows.append(
            {
                "name": d["name"],
                "kind": d["kind"],
                "seconds": d["seconds"],
                "share": d["seconds"] / total,
                "events": d["events"],
                "counters": d["counters"],
            }
        )
    return sorted(rows, key=lambda r: -r["seconds"])


def render_spans(trace: Trace, width: int = 40, title: str | None = None) -> str:
    """ASCII profile over the span summary — the measured counterpart of
    :func:`repro.gpusim.trace.render_profile`."""
    rows = span_summary(trace)
    lines = [title or f"measured profile ({trace.wall_seconds * 1e3:.2f} ms wall)"]
    name_w = max((len(r["name"]) for r in rows), default=4)
    for r in rows:
        bar = "#" * max(1, round(min(1.0, r["share"]) * width))
        lines.append(
            f"  {r['name']:<{name_w}} {r['seconds'] * 1e3:9.3f} ms {r['share']:6.1%} "
            f"{bar:<{width}} x{r['events']}"
        )
    return "\n".join(lines)


def tenant_summary(trace: Trace) -> list[dict]:
    """Per-tenant serving breakdown from ``serving.request`` spans.

    Each completion (and failure) in :class:`repro.serving.QRServer`
    emits one ``serving.request`` span tagged with the tenant label, the
    execution rung it took (``coalesced`` / ``shared-plan`` /
    ``per-request`` / ``failed``) and its queue latency.  This rolls a
    capture up into one row per tenant: ``tenant`` / ``requests`` /
    ``failed`` / ``rungs`` (rung -> count) / ``queue_p50_ms`` /
    ``queue_p95_ms``, sorted by request count descending — the
    multi-tenant answer to "who is filling the window, and is anyone
    stuck behind it?".
    """
    per: dict[str, dict] = {}
    for s in trace.spans:
        if s.name != "serving.request":
            continue
        tenant = str(s.args.get("tenant", "default"))
        rung = str(s.args.get("rung", "?"))
        d = per.setdefault(
            tenant,
            {"tenant": tenant, "requests": 0, "failed": 0, "rungs": {}, "_q": []},
        )
        d["requests"] += 1
        d["rungs"][rung] = d["rungs"].get(rung, 0) + 1
        if rung == "failed":
            d["failed"] += 1
        q = s.args.get("queue_ms")
        if q is not None:
            d["_q"].append(float(q))
    rows = []
    for d in sorted(per.values(), key=lambda d: -d["requests"]):
        qs = sorted(d.pop("_q"))

        def _pct(p: float) -> float:
            if not qs:
                return float("nan")
            return qs[min(len(qs) - 1, int(round(p * (len(qs) - 1))))]

        d["queue_p50_ms"] = _pct(0.50)
        d["queue_p95_ms"] = _pct(0.95)
        rows.append(d)
    return rows


def from_timeline(tl, name: str = "gpusim") -> Trace:
    """Lift a simulated :class:`~repro.gpusim.timeline.Timeline` into a trace.

    Events become back-to-back spans on a synthetic clock (tid 0, root
    span ``name`` covering the whole run); each span carries the event's
    traffic counters, so :meth:`Trace.total_counters` reproduces
    ``Timeline.counters`` field by field — a pinned test invariant.
    """
    from dataclasses import fields as dc_fields

    spans: list[Span] = []
    cursor = 0
    root = Span(id=1, parent=None, name=name, cat="sim", tid=0, start_ns=0)
    next_id = 2
    for e in tl.events:
        dur = int(round(e.seconds * 1e9))
        ctrs = {
            f.name: getattr(e.counters, f.name)
            for f in dc_fields(e.counters)
            if getattr(e.counters, f.name)
        }
        spans.append(
            Span(
                id=next_id,
                parent=1,
                name=e.name,
                cat=e.kind,
                tid=0,
                start_ns=cursor,
                dur_ns=dur,
                args={"tag": e.tag} if e.tag else {},
                counters=ctrs,
            )
        )
        next_id += 1
        cursor += dur
    root.dur_ns = cursor
    spans.insert(0, root)
    return Trace(
        spans=spans,
        start_ns=0,
        end_ns=cursor,
        meta={"source": "gpusim", "device": tl.device.name},
        thread_names={0: "sim"},
    )
