"""Span-based runtime tracer for the *real* execution paths.

The simulator has had a profiler view since PR 1 (:mod:`repro.gpusim.trace`)
— but the measured paths (batched, structured, look-ahead, plans,
dispatcher) were a black box.  This module instruments them with
hierarchical **spans**: named, categorized intervals on monotonic clocks
(:func:`time.perf_counter_ns`), stacked per execution context
(:class:`contextvars.ContextVar`, so nesting survives thread hops of the
look-ahead pool), each carrying free-form ``args`` and numeric
``counters``.

Design constraints, in priority order:

1. **Zero overhead when disabled.**  Instrumentation sites call
   :func:`span` / :func:`counters`; with no active session both return
   after one module-global ``is None`` check (no allocation, no clock
   read).  A benchmark assertion pins this (<2% on
   ``bench_realtime.py --quick``).
2. **Thread-correct.**  The active session is a module global (the
   look-ahead pool's worker threads must see it), the *span stack* is a
   context variable (each thread nests independently).  Finished spans
   are appended under the GIL (list.append is atomic); ids come from a
   lock-protected counter.
3. **No repro imports.**  The guard layer and the policy layer both call
   into this module; it depends only on the standard library, so it sits
   at the very bottom of the import graph.

Usage::

    from repro import obs

    with obs.capture() as session:
        plan = plan_qr(110_592, 100, policy=policy)
        plan.factor(A)
    trace = session.trace
    obs.write_chrome_trace(trace, "trace.json")   # load in Perfetto
    print(obs.render_spans(trace))
"""

from __future__ import annotations

import threading
import time
from contextvars import ContextVar
from dataclasses import dataclass, field

__all__ = [
    "Span",
    "Trace",
    "TraceSession",
    "capture",
    "counters",
    "enabled",
    "maybe_trace",
    "span",
]


@dataclass
class Span:
    """One named interval of the measured execution.

    ``tid`` is a session-local small integer (0 is the capturing thread),
    stable across export.  ``counters`` holds numeric quantities
    attributed to the span via :func:`counters` (bytes scanned, cache
    hits, flops); ``args`` holds identifying context (panel index, column
    range) that the Chrome exporter surfaces per event.
    """

    id: int
    parent: int | None
    name: str
    cat: str
    tid: int
    start_ns: int
    dur_ns: int = 0
    args: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        return self.dur_ns / 1e9


@dataclass
class Trace:
    """A finished capture: the span forest plus session metadata."""

    spans: list[Span]
    start_ns: int
    end_ns: int
    meta: dict = field(default_factory=dict)
    thread_names: dict = field(default_factory=dict)  # tid -> label

    @property
    def wall_seconds(self) -> float:
        return max(0, self.end_ns - self.start_ns) / 1e9

    def roots(self) -> list[Span]:
        """Top-level spans (no parent), in start order."""
        return sorted((s for s in self.spans if s.parent is None), key=lambda s: s.start_ns)

    def children(self, span_id: int) -> list[Span]:
        return sorted(
            (s for s in self.spans if s.parent == span_id), key=lambda s: s.start_ns
        )

    def by_cat(self, cat: str) -> list[Span]:
        return [s for s in self.spans if s.cat == cat]

    def seconds_by_cat(self) -> dict:
        """Total span seconds grouped by category (nested spans included)."""
        out: dict = {}
        for s in self.spans:
            out[s.cat] = out.get(s.cat, 0.0) + s.seconds
        return out

    def total_counters(self) -> dict:
        """Sum of every span's counters (one figure per counter name)."""
        out: dict = {}
        for s in self.spans:
            for k, v in s.counters.items():
                out[k] = out.get(k, 0) + v
        return out

    def coverage(self, root: Span | None = None) -> float:
        """Fraction of ``root``'s duration covered by other spans.

        Every other span's interval is unioned (nesting collapses under
        the union; look-ahead worker spans count even though they are
        roots of their own threads) and clipped to the root.  Default
        root: the longest top-level span.  1.0 means the instrumentation
        accounts for the whole wall time; the CLI asserts >= 0.95 for
        its runs.
        """
        if root is None:
            roots = self.roots()
            if not roots:
                return 0.0
            root = max(roots, key=lambda s: s.dur_ns)
        if root.dur_ns <= 0:
            return 0.0
        lo, hi = root.start_ns, root.start_ns + root.dur_ns
        ivals = sorted(
            (max(lo, c.start_ns), min(hi, c.start_ns + c.dur_ns))
            for c in self.spans
            if c.id != root.id
        )
        covered = 0
        cur_lo = cur_hi = None
        for a, b in ivals:
            if b <= a:
                continue
            if cur_hi is None or a > cur_hi:
                if cur_hi is not None:
                    covered += cur_hi - cur_lo
                cur_lo, cur_hi = a, b
            else:
                cur_hi = max(cur_hi, b)
        if cur_hi is not None:
            covered += cur_hi - cur_lo
        return covered / root.dur_ns


# ---------------------------------------------------------------------------
# The active session -----------------------------------------------------------
# ---------------------------------------------------------------------------

# Module global so pool worker threads observe the capture; ``None`` is
# the disabled fast path every instrumentation site checks first.
_session: "TraceSession | None" = None
_session_lock = threading.Lock()

# Per-context stack of *open* spans.  A worker thread starts with the
# default (empty) stack — its spans are roots of that thread, which is
# exactly the stream/worker attribution we want.
_stack: ContextVar[tuple] = ContextVar("repro_obs_stack", default=())


class TraceSession:
    """One capture: activate with ``with session:``, read ``.trace`` after.

    Re-entrant: a session stored on an :class:`ExecutionPolicy` is
    activated once per traced call and accumulates spans across calls
    (the streaming-RPCA regime: one session, many factorizations).
    Nested activation of *another* session shadows this one until it
    exits.
    """

    def __init__(self, meta: dict | None = None) -> None:
        self.meta = dict(meta or {})
        self.spans: list[Span] = []
        self.start_ns: int | None = None
        self.end_ns: int | None = None
        self._ids = 0
        self._lock = threading.Lock()
        self._tids: dict[int, int] = {}  # threading.get_ident() -> small int
        self._prev: list[TraceSession | None] = []

    # -- bookkeeping -------------------------------------------------------

    def _next_id(self) -> int:
        with self._lock:
            self._ids += 1
            return self._ids

    def _tid(self) -> int:
        ident = threading.get_ident()
        tid = self._tids.get(ident)
        if tid is None:
            with self._lock:
                tid = self._tids.setdefault(ident, len(self._tids))
        return tid

    # -- activation --------------------------------------------------------

    def __enter__(self) -> "TraceSession":
        global _session
        with _session_lock:
            self._prev.append(_session)
            _session = self
        self._tid()  # tid 0 = the capturing thread
        if self.start_ns is None:
            self.start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc) -> None:
        global _session
        self.end_ns = time.perf_counter_ns()
        with _session_lock:
            _session = self._prev.pop() if self._prev else None

    # -- results -----------------------------------------------------------

    @property
    def trace(self) -> Trace:
        """The capture as an immutable-ish :class:`Trace` snapshot."""
        start = self.start_ns if self.start_ns is not None else 0
        end = self.end_ns if self.end_ns is not None else time.perf_counter_ns()
        names = {tid: ("main" if tid == 0 else f"worker-{tid}") for tid in self._tids.values()}
        return Trace(
            spans=list(self.spans),
            start_ns=start,
            end_ns=end,
            meta=dict(self.meta),
            thread_names=names,
        )


def capture(meta: dict | None = None) -> TraceSession:
    """Start-a-capture context manager: ``with obs.capture() as s: ...``."""
    return TraceSession(meta=meta)


def enabled() -> bool:
    """Whether a trace session is currently active."""
    return _session is not None


# ---------------------------------------------------------------------------
# Instrumentation sites --------------------------------------------------------
# ---------------------------------------------------------------------------


class _NoopSpan:
    """Shared do-nothing context manager — the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NOOP = _NoopSpan()


class _LiveSpan:
    """An open span: records duration and pops the stack on exit."""

    __slots__ = ("session", "span", "_token")

    def __init__(self, session: TraceSession, span: Span) -> None:
        self.session = session
        self.span = span
        self._token = None

    def __enter__(self) -> Span:
        self._token = _stack.set(_stack.get() + (self.span,))
        self.span.start_ns = time.perf_counter_ns()
        return self.span

    def __exit__(self, *exc) -> bool:
        self.span.dur_ns = time.perf_counter_ns() - self.span.start_ns
        _stack.reset(self._token)
        self.session.spans.append(self.span)  # GIL-atomic
        return False


def span(name: str, cat: str = "", **args):
    """Open a span under the innermost open span of this context.

    No-op (one global check, no allocation) when tracing is disabled.
    Use as ``with obs.span("factor", cat="factor", panel=3): ...``.
    """
    sess = _session
    if sess is None:
        return _NOOP
    stack = _stack.get()
    parent = stack[-1].id if stack else None
    s = Span(
        id=sess._next_id(),
        parent=parent,
        name=name,
        cat=cat,
        tid=sess._tid(),
        start_ns=time.perf_counter_ns(),
        args=args,
    )
    return _LiveSpan(sess, s)


def counters(**kw) -> None:
    """Accumulate numeric counters onto the innermost open span.

    With no open span (but an active session) the counters land on a
    zero-length synthetic span, so nothing is silently dropped.  No-op
    when tracing is disabled.
    """
    sess = _session
    if sess is None:
        return
    stack = _stack.get()
    if stack:
        c = stack[-1].counters
        for k, v in kw.items():
            c[k] = c.get(k, 0) + v
        return
    s = Span(
        id=sess._next_id(),
        parent=None,
        name="counters",
        cat="counters",
        tid=sess._tid(),
        start_ns=time.perf_counter_ns(),
        counters=dict(kw),
    )
    sess.spans.append(s)


class _NoopCtx:
    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NOOP_CTX = _NoopCtx()


def maybe_trace(session: "TraceSession | None"):
    """Activate ``session`` for one call; no-op for ``None``.

    The :class:`~repro.runtime.policy.ExecutionPolicy` ``trace=`` field
    is surfaced through this helper at every policy-accepting entry
    point: ``with maybe_trace(policy.trace): ...``.
    """
    return _NOOP_CTX if session is None else session
