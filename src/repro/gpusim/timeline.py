"""Execution timeline: an ordered log of simulated launches and transfers.

The host pseudocode of Figure 4 is a serial stream of kernel launches; a
:class:`Timeline` records each one with its timing breakdown and traffic
counters.  Experiments read totals (seconds, GFLOPS against the standard
SGEQRF flop count) and per-kernel aggregates (where does the time go —
the Section IV-G tuning-summary view).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .counters import Counters
from .device import DeviceSpec, PCIeLink
from .launch import LaunchSpec, LaunchTiming, time_launch

__all__ = ["Event", "Timeline"]


@dataclass(frozen=True)
class Event:
    """One simulated action (kernel launch or PCIe transfer)."""

    kind: str  # "kernel" | "transfer" | "host"
    name: str
    seconds: float
    counters: Counters
    timing: LaunchTiming | None = None
    tag: str = ""


@dataclass
class Timeline:
    """Ordered event log with aggregate views."""

    device: DeviceSpec
    events: list[Event] = field(default_factory=list)

    # -- recording ---------------------------------------------------------

    def launch(self, spec: LaunchSpec) -> LaunchTiming:
        """Time a kernel launch and append it to the log."""
        timing = time_launch(spec, self.device)
        self.events.append(
            Event(
                kind="kernel",
                name=spec.kernel,
                seconds=timing.seconds,
                counters=spec.counters(),
                timing=timing,
                tag=spec.tag,
            )
        )
        return timing

    def transfer(self, link: PCIeLink, n_bytes: float, name: str = "pcie") -> float:
        """Time a CPU<->GPU transfer and append it to the log."""
        seconds = link.transfer_seconds(n_bytes)
        self.events.append(
            Event(
                kind="transfer",
                name=name,
                seconds=seconds,
                counters=Counters(pcie_bytes=n_bytes, pcie_transfers=1),
            )
        )
        return seconds

    def host(self, name: str, seconds: float, flops: float = 0.0) -> float:
        """Record a host-side (CPU) computation of known duration."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        self.events.append(
            Event(kind="host", name=name, seconds=seconds, counters=Counters(flops=flops))
        )
        return seconds

    # -- aggregates ----------------------------------------------------------

    @property
    def total_seconds(self) -> float:
        return sum(e.seconds for e in self.events)

    @property
    def counters(self) -> Counters:
        total = Counters()
        for e in self.events:
            total.add(e.counters)
        return total

    def gflops(self, reference_flops: float | None = None) -> float:
        """GFLOP/s against ``reference_flops`` (default: counted flops).

        The paper reports performance against the *standard* SGEQRF flop
        count ``2mn^2 - 2n^3/3`` even though CAQR performs extra
        arithmetic; pass that count as ``reference_flops`` to match.
        """
        t = self.total_seconds
        if t <= 0:
            return 0.0
        flops = self.counters.flops if reference_flops is None else reference_flops
        return flops / t / 1e9

    def seconds_by_kernel(self) -> dict[str, float]:
        """Total simulated time grouped by kernel/transfer name."""
        out: dict[str, float] = {}
        for e in self.events:
            out[e.name] = out.get(e.name, 0.0) + e.seconds
        return out

    def launches_by_kernel(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for e in self.events:
            if e.kind == "kernel":
                out[e.name] = out.get(e.name, 0) + 1
        return out

    def extend(self, other: "Timeline") -> "Timeline":
        """Append another timeline's events (sequential composition)."""
        self.events.extend(other.events)
        return self
