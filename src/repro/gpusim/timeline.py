"""Execution timeline: an ordered log of simulated launches and transfers.

The host pseudocode of Figure 4 is a serial stream of kernel launches; a
:class:`Timeline` records each one with its timing breakdown and traffic
counters.  Experiments read totals (seconds, GFLOPS against the standard
SGEQRF flop count) and per-kernel aggregates (where does the time go —
the Section IV-G tuning-summary view).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .counters import Counters
from .device import DeviceSpec, PCIeLink
from .launch import LaunchSpec, LaunchTiming, time_launch

__all__ = ["Event", "Timeline"]


@dataclass(frozen=True)
class Event:
    """One simulated action (kernel launch or PCIe transfer)."""

    kind: str  # "kernel" | "transfer" | "host"
    name: str
    seconds: float
    counters: Counters
    timing: LaunchTiming | None = None
    tag: str = ""


@dataclass
class Timeline:
    """Ordered event log with aggregate views.

    ``total_seconds`` and ``counters`` fold events into a running
    aggregate incrementally: each event is reduced exactly once no matter
    how often the properties are read (experiment sweeps poll them after
    every launch, which used to re-reduce the full list each time).  The
    aggregate tracks ``events`` by length, so appending — directly or via
    :meth:`launch`/:meth:`extend` — is picked up lazily, and replacing
    the list with a shorter one resets the fold.
    """

    device: DeviceSpec
    events: list[Event] = field(default_factory=list)
    _agg_n: int = field(default=0, repr=False, compare=False)
    _agg_seconds: float = field(default=0.0, repr=False, compare=False)
    _agg_counters: Counters = field(default_factory=Counters, repr=False, compare=False)

    def _refresh(self) -> None:
        """Fold any events appended since the last aggregate read."""
        n = len(self.events)
        if self._agg_n > n:  # the event list shrank: start over
            self._agg_n = 0
            self._agg_seconds = 0.0
            self._agg_counters = Counters()
        while self._agg_n < n:
            e = self.events[self._agg_n]
            self._agg_seconds += e.seconds
            self._agg_counters.add(e.counters)
            self._agg_n += 1

    # -- recording ---------------------------------------------------------

    def launch(self, spec: LaunchSpec) -> LaunchTiming:
        """Time a kernel launch and append it to the log."""
        timing = time_launch(spec, self.device)
        self.events.append(
            Event(
                kind="kernel",
                name=spec.kernel,
                seconds=timing.seconds,
                counters=spec.counters(),
                timing=timing,
                tag=spec.tag,
            )
        )
        return timing

    def transfer(self, link: PCIeLink, n_bytes: float, name: str = "pcie") -> float:
        """Time a CPU<->GPU transfer and append it to the log."""
        seconds = link.transfer_seconds(n_bytes)
        self.events.append(
            Event(
                kind="transfer",
                name=name,
                seconds=seconds,
                counters=Counters(pcie_bytes=n_bytes, pcie_transfers=1),
            )
        )
        return seconds

    def host(self, name: str, seconds: float, flops: float = 0.0) -> float:
        """Record a host-side (CPU) computation of known duration."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        self.events.append(
            Event(kind="host", name=name, seconds=seconds, counters=Counters(flops=flops))
        )
        return seconds

    # -- aggregates ----------------------------------------------------------

    @property
    def total_seconds(self) -> float:
        self._refresh()
        return self._agg_seconds

    @property
    def counters(self) -> Counters:
        self._refresh()
        # A fresh object, as before: callers may accumulate into it.
        return Counters() + self._agg_counters

    def gflops(self, reference_flops: float | None = None) -> float:
        """GFLOP/s against ``reference_flops`` (default: counted flops).

        The paper reports performance against the *standard* SGEQRF flop
        count ``2mn^2 - 2n^3/3`` even though CAQR performs extra
        arithmetic; pass that count as ``reference_flops`` to match.
        """
        t = self.total_seconds
        if t <= 0:
            return 0.0
        flops = self.counters.flops if reference_flops is None else reference_flops
        return flops / t / 1e9

    def seconds_by_kernel(self) -> dict[str, float]:
        """Total simulated time grouped by kernel/transfer name."""
        out: dict[str, float] = {}
        for e in self.events:
            out[e.name] = out.get(e.name, 0.0) + e.seconds
        return out

    def launches_by_kernel(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for e in self.events:
            if e.kind == "kernel":
                out[e.name] = out.get(e.name, 0) + 1
        return out

    def extend(self, other: "Timeline") -> "Timeline":
        """Append another timeline's events (sequential composition)."""
        self.events.extend(other.events)
        return self
