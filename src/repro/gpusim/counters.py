"""Traffic and work counters — what the simulator actually measures.

The communication-avoiding argument is quantitative: CAQR moves
asymptotically fewer words between slow and fast memory than blocked
Householder for the same flops.  Every simulated kernel launch and
transfer accumulates into a :class:`Counters`, so experiments can report
bytes/flops alongside modeled runtimes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Counters"]


@dataclass
class Counters:
    """Accumulated work and traffic."""

    flops: float = 0.0  # useful floating-point operations
    gmem_read_bytes: float = 0.0  # global memory (DRAM) reads
    gmem_write_bytes: float = 0.0  # global memory (DRAM) writes
    smem_transactions: float = 0.0  # shared-memory warp transactions
    pcie_bytes: float = 0.0  # CPU<->GPU transfer volume
    kernel_launches: int = 0
    pcie_transfers: int = 0
    thread_blocks: int = 0

    @property
    def gmem_bytes(self) -> float:
        return self.gmem_read_bytes + self.gmem_write_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """Flops per DRAM byte (inf if no traffic was recorded)."""
        return self.flops / self.gmem_bytes if self.gmem_bytes else float("inf")

    def add(self, other: "Counters") -> "Counters":
        """Accumulate ``other`` into self (returns self for chaining)."""
        self.flops += other.flops
        self.gmem_read_bytes += other.gmem_read_bytes
        self.gmem_write_bytes += other.gmem_write_bytes
        self.smem_transactions += other.smem_transactions
        self.pcie_bytes += other.pcie_bytes
        self.kernel_launches += other.kernel_launches
        self.pcie_transfers += other.pcie_transfers
        self.thread_blocks += other.thread_blocks
        return self

    def __add__(self, other: "Counters") -> "Counters":
        out = Counters()
        out.add(self)
        out.add(other)
        return out
