"""Execution-driven GPU simulator (the hardware substitution substrate).

The paper ran on an NVIDIA C2050; this environment has no GPU.  Per the
substitution rule, the simulator preserves the quantities the paper's
argument rests on — flops, DRAM bytes, shared-memory transactions, kernel
launch counts, occupancy, PCIe transfers — and converts them to time with
a calibrated roofline + wave-scheduling model.  Numerics remain real:
kernels execute genuine NumPy arithmetic while their launches are costed.
"""

from .counters import Counters
from .device import (
    C2050,
    COREI7_4CORE,
    CPUSpec,
    DeviceSpec,
    GTX480,
    NEHALEM_8CORE,
    PCIE_GEN2,
    PCIeLink,
)
from .block_machine import BlockCounters, BlockMachine, SharedMemory
from .concurrent import (
    ConcurrentTimeline,
    ScheduledLaunch,
    list_schedule,
    list_schedule_graph,
    occupancy_weight,
)
from .schedule import EventSchedule, Task
from .launch import LaunchSpec, LaunchTiming, occupancy_blocks_per_sm, time_launch
from .timeline import Event, Timeline
from .trace import kernel_summary, render_profile

__all__ = [
    "Counters",
    "C2050",
    "COREI7_4CORE",
    "CPUSpec",
    "DeviceSpec",
    "GTX480",
    "NEHALEM_8CORE",
    "PCIE_GEN2",
    "PCIeLink",
    "LaunchSpec",
    "LaunchTiming",
    "occupancy_blocks_per_sm",
    "time_launch",
    "Event",
    "Timeline",
    "ConcurrentTimeline",
    "ScheduledLaunch",
    "list_schedule",
    "list_schedule_graph",
    "occupancy_weight",
    "BlockCounters",
    "BlockMachine",
    "SharedMemory",
    "kernel_summary",
    "render_profile",
    "EventSchedule",
    "Task",
]
