"""A warp-synchronous functional executor for one thread block.

The analytic cost model (:mod:`repro.kernels.strategies`) *predicts*
shared-memory transactions and flops; this machine *measures* them by
actually executing a kernel the way the GPU does: ``T`` threads, each
with a private register file, communicating only through an explicitly
allocated shared memory, in lock-step phases separated by
``syncthreads``.  All per-thread lanes are vectorized with NumPy (thread
index = array axis), so the execution is fast enough for tests while the
counted traffic is exact.

This is what upgrades the simulator from "cost formulas" to
"execution-driven": :mod:`repro.kernels.simt` implements ``apply_qt_h``
on this machine, tests check it reproduces ``orm2r`` bit-for-bit-ish, and
calibration tests check the measured transaction counts against the
analytic model's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["BlockCounters", "SharedMemory", "BlockMachine"]

WARP = 32


@dataclass
class BlockCounters:
    """Dynamic counters accumulated by one block execution."""

    flops: float = 0.0
    smem_read_transactions: float = 0.0
    smem_write_transactions: float = 0.0
    syncthreads: int = 0

    @property
    def smem_transactions(self) -> float:
        return self.smem_read_transactions + self.smem_write_transactions


class SharedMemory:
    """A word-addressed shared-memory array with transaction counting.

    A warp's access counts as one transaction per 32 active lanes; reads
    where every active lane addresses the same word count once (the
    hardware broadcast).  Bank conflicts are not modeled (the paper's
    layouts are conflict-free by construction).
    """

    def __init__(self, n_words: int, counters: BlockCounters, dtype=np.float64) -> None:
        if n_words < 0:
            raise ValueError("n_words must be non-negative")
        self.data = np.zeros(n_words, dtype=dtype)
        self.counters = counters

    def _count(self, addrs: np.ndarray, write: bool) -> None:
        addrs = np.asarray(addrs)
        n_active = addrs.size
        transactions = 0.0
        for w0 in range(0, n_active, WARP):
            warp_addrs = addrs.ravel()[w0 : w0 + WARP]
            # Broadcast: one transaction serves identical addresses.
            transactions += 1.0 if np.unique(warp_addrs).size >= 1 else 0.0
        if write:
            self.counters.smem_write_transactions += transactions
        else:
            self.counters.smem_read_transactions += transactions

    def read(self, addrs: np.ndarray) -> np.ndarray:
        """Per-lane gather; ``addrs`` is one address per active thread."""
        addrs = np.asarray(addrs, dtype=np.intp)
        self._count(addrs, write=False)
        return self.data[addrs]

    def write(self, addrs: np.ndarray, values: np.ndarray) -> None:
        """Per-lane scatter (distinct addresses per lane, as in the kernels)."""
        addrs = np.asarray(addrs, dtype=np.intp)
        self._count(addrs, write=True)
        self.data[addrs] = values

    def load_bulk(self, values: np.ndarray, offset: int = 0) -> None:
        """Cooperative global->shared staging; counted as strided writes."""
        values = np.asarray(values).ravel()
        self.data[offset : offset + values.size] = values
        self.counters.smem_write_transactions += np.ceil(values.size / WARP)


@dataclass
class BlockMachine:
    """One thread block: T lanes, private registers, shared memory."""

    threads: int
    smem_words: int
    dtype: np.dtype = np.float64
    counters: BlockCounters = field(default_factory=BlockCounters)

    def __post_init__(self) -> None:
        if self.threads < 1 or self.threads % WARP not in (0, self.threads % WARP):
            raise ValueError("threads must be positive")
        self.smem = SharedMemory(self.smem_words, self.counters, dtype=self.dtype)

    def alloc_registers(self, slots: int) -> np.ndarray:
        """A (threads, slots) private register file (axis 0 = lane)."""
        if slots < 0:
            raise ValueError("slots must be non-negative")
        return np.zeros((self.threads, slots), dtype=self.dtype)

    def syncthreads(self) -> None:
        self.counters.syncthreads += 1

    def fma(self, count: float) -> None:
        """Record ``count`` fused multiply-adds (2 flops each)."""
        self.counters.flops += 2.0 * count

    def flop(self, count: float) -> None:
        self.counters.flops += float(count)
