"""Stream-aware list scheduling of a launch DAG (concurrent kernels).

Fermi-class devices execute kernels from different streams concurrently
as long as SM resources are free.  This module schedules a dependency
graph of launches onto ``S`` streams under that resource model:

* **streams** — each stream is an in-order queue; a launch occupies its
  stream from issue to completion, so at most ``S`` launches run at once.
* **SM occupancy** — a launch with ``n_blocks`` thread blocks and an
  occupancy of ``blocks_per_sm`` fills the fraction
  ``min(1, n_blocks / (n_sm * blocks_per_sm))`` of the device.  The sum
  of running fractions never exceeds 1: two grids that each fill the
  device serialize (which is also what makes concurrent scheduling of
  throughput-bound work time-conserving), while small latency-bound
  launches — tree levels, first-tile updates — genuinely overlap.

The scheduler is greedy list scheduling in program order: each launch
starts at the earliest time that (a) its dependencies have finished,
(b) some stream is free, and (c) device capacity admits its fraction for
its *body* — the fixed launch overhead is host/driver issue time, which
asynchronous stream issue pipelines behind whatever the device is
already running (the serial stream, by contrast, pays every overhead on
the critical path — that is much of what overlap buys on large shapes).
Durations come from the same :func:`~repro.gpusim.launch.time_launch`
roofline that prices the serial timeline, so serial and overlapped
seconds are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence

from .device import C2050, DeviceSpec
from .launch import LaunchSpec, occupancy_blocks_per_sm, time_launch

__all__ = [
    "ScheduledLaunch",
    "ConcurrentTimeline",
    "occupancy_weight",
    "list_schedule",
    "list_schedule_graph",
]

_EPS = 1e-12


class _GraphNode(Protocol):
    spec: LaunchSpec
    deps: tuple[int, ...]


def occupancy_weight(spec: LaunchSpec, dev: DeviceSpec) -> float:
    """Fraction of the device one launch occupies while resident."""
    bps = occupancy_blocks_per_sm(spec, dev)
    return min(1.0, max(1, spec.n_blocks) / float(dev.n_sm * bps))


@dataclass(frozen=True)
class ScheduledLaunch:
    """One launch placed on a stream."""

    node_id: int
    kernel: str
    tag: str
    stream: int
    start: float  # host issue begins (launch overhead runs first)
    body_start: float  # kernel body occupies the device from here
    finish: float
    weight: float  # device fraction occupied while the body runs

    @property
    def seconds(self) -> float:
        return self.finish - self.start


@dataclass
class ConcurrentTimeline:
    """The overlapped schedule of one launch DAG on ``streams`` streams."""

    device: DeviceSpec
    streams: int
    launches: list[ScheduledLaunch] = field(default_factory=list)

    @property
    def makespan(self) -> float:
        return max((ev.finish for ev in self.launches), default=0.0)

    def stream_busy_seconds(self) -> dict[int, float]:
        out: dict[int, float] = {s: 0.0 for s in range(self.streams)}
        for ev in self.launches:
            out[ev.stream] += ev.seconds
        return out

    def utilization(self) -> float:
        """Mean busy fraction across streams over the makespan."""
        span = self.makespan
        if span <= 0:
            return 0.0
        busy = sum(self.stream_busy_seconds().values())
        return busy / (span * self.streams)

    def max_concurrent_weight(self) -> float:
        """Peak summed device fraction at any instant (for invariants)."""
        peak = 0.0
        for ev in self.launches:
            t = ev.body_start
            tot = sum(o.weight for o in self.launches if o.body_start <= t < o.finish)
            peak = max(peak, tot)
        return peak


def _earliest_capacity_start(
    placed: list[ScheduledLaunch], t0: float, weight: float, ov: float, dur: float
) -> float:
    """Earliest issue time ``t >= t0`` whose body window ``[t+ov, t+dur)``
    fits ``weight`` under the running load (bodies only — overhead is
    host time and occupies no device capacity)."""
    if dur <= ov or weight <= 0.0:
        return t0

    def fits(t: float) -> bool:
        # Concurrent weight is piecewise constant; it changes only at
        # body starts, so checking the window start and every body start
        # inside the window bounds the maximum.
        points = [t + ov] + [ev.body_start for ev in placed if t + ov < ev.body_start < t + dur]
        for p in points:
            load = sum(ev.weight for ev in placed if ev.body_start <= p < ev.finish)
            if load + weight > 1.0 + _EPS:
                return False
        return True

    if fits(t0):
        return t0
    # Capacity frees only when some body finishes; issuing ov early puts
    # this launch's body start exactly at that release point.
    for t in sorted({ev.finish - ov for ev in placed if ev.finish - ov > t0}):
        if fits(t):
            return t
    # Unreachable: past the last finish nothing is running.
    return max((ev.finish for ev in placed), default=t0)


def list_schedule(
    nodes: Sequence[_GraphNode],
    dev: DeviceSpec = C2050,
    streams: int = 4,
) -> ConcurrentTimeline:
    """Greedy list schedule of ``nodes`` (program order, ids positional).

    ``nodes`` is any sequence of objects with a ``spec``
    (:class:`LaunchSpec`) and ``deps`` (ids of earlier nodes); program
    order must be topological.  Returns the placed schedule; with
    ``streams=1`` it degenerates to the serial stream of the given nodes.
    """
    if streams < 1:
        raise ValueError("streams must be >= 1")
    tl = ConcurrentTimeline(device=dev, streams=streams)
    finish = [0.0] * len(nodes)
    stream_free = [0.0] * streams
    for i, node in enumerate(nodes):
        timing = time_launch(node.spec, dev)
        dur = timing.seconds
        ov = timing.overhead_s
        w = occupancy_weight(node.spec, dev)
        ready = max((finish[d] for d in node.deps), default=0.0)
        # Earliest-available stream (ties -> lowest index, deterministic).
        s = min(range(streams), key=lambda j: (max(stream_free[j], ready), j))
        t0 = max(stream_free[s], ready)
        t0 = _earliest_capacity_start(tl.launches, t0, w, ov, dur)
        ev = ScheduledLaunch(
            node_id=i,
            kernel=node.spec.kernel,
            tag=node.spec.tag,
            stream=s,
            start=t0,
            body_start=t0 + min(ov, dur),
            finish=t0 + dur,
            weight=w,
        )
        tl.launches.append(ev)
        finish[i] = ev.finish
        stream_free[s] = ev.finish
    return tl


def list_schedule_graph(tg, dev: DeviceSpec = C2050, streams: int = 4) -> ConcurrentTimeline:
    """Greedy list schedule of a :class:`~repro.graph.highlevel.TaskGraph`.

    Launches are issued in the graph's *static order* (the
    critical-path-aware pass from :mod:`repro.graph.order`) rather than
    emission order, so long dependency chains start as early as the
    stream model allows.  Per-layer ``stream`` annotations pin tasks to
    a stream (modulo ``streams``); unannotated layers take the
    earliest-available stream.  Every task must carry a
    :class:`LaunchSpec`; ``node_id`` in the returned timeline is the
    task's emission index.
    """
    # Deferred: repro.graph sits above gpusim in the layering; importing
    # it lazily keeps this module importable on its own and breaks the
    # import cycle (graph.dag imports gpusim.launch at module scope).
    from repro.graph.order import static_order

    if streams < 1:
        raise ValueError("streams must be >= 1")
    tl = ConcurrentTimeline(device=dev, streams=streams)
    finish: dict = {}
    stream_free = [0.0] * streams
    for key in static_order(tg):
        task = tg.task(key)
        if task.spec is None:
            raise ValueError(f"task {key!r} has no launch spec; cannot schedule")
        ann = tg.annotations(task)
        timing = time_launch(task.spec, dev)
        dur = timing.seconds
        ov = timing.overhead_s
        w = occupancy_weight(task.spec, dev)
        ready = max((finish[d] for d in task.deps), default=0.0)
        if ann.stream is not None:
            s = ann.stream % streams
        else:
            s = min(range(streams), key=lambda j: (max(stream_free[j], ready), j))
        t0 = max(stream_free[s], ready)
        t0 = _earliest_capacity_start(tl.launches, t0, w, ov, dur)
        ev = ScheduledLaunch(
            node_id=task.seq,
            kernel=task.spec.kernel,
            tag=task.spec.tag,
            stream=s,
            start=t0,
            body_start=t0 + min(ov, dur),
            finish=t0 + dur,
            weight=w,
        )
        tl.launches.append(ev)
        finish[key] = ev.finish
        stream_free[s] = ev.finish
    return tl
