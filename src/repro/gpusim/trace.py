"""Timeline rendering: where does the simulated time go?

Profiler-style views over a :class:`~repro.gpusim.timeline.Timeline`:
a per-kernel summary table (time, launches, flops, bytes, achieved
rates) and an ASCII time-share bar chart — the tooling a user of the
simulator reaches for first when a configuration underperforms.
"""

from __future__ import annotations

from .counters import Counters
from .timeline import Timeline

__all__ = ["kernel_summary", "render_profile"]


def kernel_summary(tl: Timeline) -> list[dict]:
    """Per-kernel aggregates, sorted by time descending."""
    agg: dict[str, dict] = {}
    for e in tl.events:
        d = agg.setdefault(
            e.name,
            {"name": e.name, "kind": e.kind, "seconds": 0.0, "events": 0, "counters": Counters()},
        )
        d["seconds"] += e.seconds
        d["events"] += 1
        d["counters"].add(e.counters)
    rows = []
    total = tl.total_seconds or 1.0
    for d in agg.values():
        c: Counters = d["counters"]
        rows.append(
            {
                "name": d["name"],
                "kind": d["kind"],
                "seconds": d["seconds"],
                "share": d["seconds"] / total,
                "events": d["events"],
                "gflops": c.flops / d["seconds"] / 1e9 if d["seconds"] > 0 else 0.0,
                "gbytes_per_s": c.gmem_bytes / d["seconds"] / 1e9 if d["seconds"] > 0 else 0.0,
                "thread_blocks": c.thread_blocks,
            }
        )
    return sorted(rows, key=lambda r: -r["seconds"])


def render_profile(tl: Timeline, width: int = 40, title: str | None = None) -> str:
    """ASCII profile: one bar per kernel, proportional to time share."""
    rows = kernel_summary(tl)
    lines = [title or f"simulated profile ({tl.total_seconds * 1e3:.2f} ms total)"]
    name_w = max((len(r["name"]) for r in rows), default=4)
    for r in rows:
        bar = "#" * max(1, round(r["share"] * width))
        lines.append(
            f"  {r['name']:<{name_w}} {r['seconds'] * 1e3:9.3f} ms {r['share']:6.1%} "
            f"{bar:<{width}} {r['gflops']:8.1f} GF/s  x{r['events']}"
        )
    return "\n".join(lines)
