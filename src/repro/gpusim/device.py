"""Device specifications for the execution-driven GPU simulator.

The paper's claims are about *communication*: which algorithm moves fewer
bytes, launches compute-bound vs bandwidth-bound kernels, and avoids
CPU-GPU transfers.  The simulator therefore models exactly those
quantities.  A :class:`DeviceSpec` captures the hardware parameters of
Section IV-A (NVIDIA C2050) plus a handful of calibrated micro-costs
(shared-memory transaction cost, synchronization cost, instruction-issue
overhead) documented below.  All constants are plain dataclass fields so
experiments can perturb them (sensitivity ablations) and tests can pin
the calibration.

Calibration provenance:

* ``C2050``: Section IV-A — 14 SMs x 32 single-precision lanes at
  1.15 GHz (1.03 TFLOP/s FMA peak; the paper quotes 1.3 TFLOP/s counting
  dual issue), 144 GB/s DRAM with ECC, 48 KB shared memory + 128 KB
  register file per SM, <= 512 threads per thread block.
* ``GTX480``: the application-study GPU of Section VI-D — 15 SMs at
  1.4 GHz, 177 GB/s, no ECC.
* Micro-costs (``smem_cycles``, ``sync_cycles``, ``issue_overhead``) are
  calibrated so the four reduction strategies of Section IV-E land on the
  paper's 55 / 168 / 194 / 388 GFLOPS for 128x16 blocks (see
  :mod:`repro.kernels.strategies` and the calibration tests).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["DeviceSpec", "PCIeLink", "CPUSpec", "C2050", "GTX480", "NEHALEM_8CORE", "COREI7_4CORE", "PCIE_GEN2"]


@dataclass(frozen=True)
class DeviceSpec:
    """A CUDA-capable GPU for the timing model."""

    name: str
    n_sm: int
    lanes_per_sm: int  # single-precision FPUs per SM
    clock_ghz: float
    flops_per_lane_cycle: float  # 2.0 with fused multiply-add
    dram_bw_gbs: float  # effective global-memory bandwidth (GB/s)
    dram_latency_us: float  # per-wave memory latency floor
    smem_per_sm_bytes: int
    regfile_per_sm_bytes: int
    l2_bytes: int
    max_threads_per_block: int
    max_blocks_per_sm: int
    kernel_launch_us: float
    # Calibrated micro-costs (cycles, per 32-wide warp transaction).
    smem_cycles: float  # one shared-memory access
    sync_cycles: float  # one __syncthreads()
    phase_latency_cycles: float  # unhidden latency at a dependent phase boundary
    gmem_issue_cycles: float  # issue cost per 32-wide global load/store group
    issue_overhead: float  # multiplicative instruction-issue overhead
    min_warps_full_rate: float  # resident warps needed to sustain issue rate
    gather_bw_eff: float  # bandwidth efficiency of tree gather/scatter
    uncoalesced_bw_eff: float  # bandwidth efficiency of strided access
    gemm_peak_gflops: float  # best-case SGEMM rate (Volkov-style kernels)

    @property
    def clock_hz(self) -> float:
        return self.clock_ghz * 1e9

    @property
    def peak_gflops(self) -> float:
        """Single-precision FMA peak over the whole chip."""
        return self.n_sm * self.lanes_per_sm * self.flops_per_lane_cycle * self.clock_ghz

    @property
    def flops_per_cycle_per_sm(self) -> float:
        return self.lanes_per_sm * self.flops_per_lane_cycle

    def with_(self, **kwargs) -> "DeviceSpec":
        """Return a perturbed copy (for sensitivity ablations)."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class PCIeLink:
    """CPU <-> GPU transfer link (Section III's 'physical link')."""

    name: str
    bw_gbs: float
    latency_us: float

    def transfer_seconds(self, n_bytes: float) -> float:
        """Time to move ``n_bytes`` one way, including launch/DMA latency."""
        if n_bytes < 0:
            raise ValueError("n_bytes must be non-negative")
        if n_bytes == 0:
            return 0.0
        return self.latency_us * 1e-6 + n_bytes / (self.bw_gbs * 1e9)


@dataclass(frozen=True)
class CPUSpec:
    """A multicore CPU for the MKL-like baseline models."""

    name: str
    n_cores: int
    clock_ghz: float
    simd_width: int  # single-precision lanes (SSE = 4)
    flops_per_lane_cycle: float  # 2.0 = mul + add ports
    mem_bw_gbs: float
    gemm_eff: float  # fraction of peak achieved by a tuned SGEMM
    blas2_bw_eff: float  # fraction of stream bandwidth achieved by SGEMV-ish ops
    thread_fork_us: float  # per-parallel-region overhead

    @property
    def peak_gflops(self) -> float:
        return self.n_cores * self.simd_width * self.flops_per_lane_cycle * self.clock_ghz

    def with_(self, **kwargs) -> "CPUSpec":
        return replace(self, **kwargs)


#: NVIDIA Tesla C2050, ECC on (Section IV-A / V-B).
C2050 = DeviceSpec(
    name="C2050",
    n_sm=14,
    lanes_per_sm=32,
    clock_ghz=1.15,
    flops_per_lane_cycle=2.0,
    dram_bw_gbs=144.0,
    dram_latency_us=0.6,
    smem_per_sm_bytes=48 * 1024,
    regfile_per_sm_bytes=128 * 1024,
    l2_bytes=768 * 1024,
    max_threads_per_block=512,
    max_blocks_per_sm=8,
    kernel_launch_us=15.0,
    smem_cycles=2.5,
    sync_cycles=14.0,
    phase_latency_cycles=75.0,
    gmem_issue_cycles=1.5,
    issue_overhead=1.2,
    min_warps_full_rate=8.0,
    gather_bw_eff=0.5,
    uncoalesced_bw_eff=0.25,
    gemm_peak_gflops=580.0,
)

#: NVIDIA GTX480 (Section VI-D application platform), no ECC.
GTX480 = DeviceSpec(
    name="GTX480",
    n_sm=15,
    lanes_per_sm=32,
    clock_ghz=1.40,
    flops_per_lane_cycle=2.0,
    dram_bw_gbs=177.0,
    dram_latency_us=0.5,
    smem_per_sm_bytes=48 * 1024,
    regfile_per_sm_bytes=128 * 1024,
    l2_bytes=768 * 1024,
    max_threads_per_block=512,
    max_blocks_per_sm=8,
    kernel_launch_us=15.0,
    smem_cycles=2.5,
    sync_cycles=14.0,
    phase_latency_cycles=75.0,
    gmem_issue_cycles=1.5,
    issue_overhead=1.2,
    min_warps_full_rate=8.0,
    gather_bw_eff=0.5,
    uncoalesced_bw_eff=0.25,
    gemm_peak_gflops=720.0,
)

#: Dual-socket quad-core Intel Xeon 5530 (Nehalem), 2.4 GHz — the Dirac
#: node CPUs MKL runs on in Section V (8 cores, SSE 4-wide).
NEHALEM_8CORE = CPUSpec(
    name="Xeon5530x2",
    n_cores=8,
    clock_ghz=2.4,
    simd_width=4,
    flops_per_lane_cycle=2.0,
    mem_bw_gbs=21.0,
    gemm_eff=0.80,
    blas2_bw_eff=0.55,
    thread_fork_us=10.0,
)

#: Intel Core i7 2.6 GHz, 4 cores — the CPU of the Robust PCA study
#: (Section VI-D).
COREI7_4CORE = CPUSpec(
    name="Corei7-4core",
    n_cores=4,
    clock_ghz=2.6,
    simd_width=4,
    flops_per_lane_cycle=2.0,
    mem_bw_gbs=17.0,
    gemm_eff=0.80,
    blas2_bw_eff=0.55,
    thread_fork_us=10.0,
)

#: PCI-express gen-2 x16 link of the Dirac nodes.
PCIE_GEN2 = PCIeLink(name="PCIe2-x16", bw_gbs=5.5, latency_us=12.0)
