"""Kernel-launch cost and timing model.

A kernel launch is described by a :class:`LaunchSpec`: how many thread
blocks, what each block costs (compute cycles, DRAM bytes), and the
per-block resource footprint that determines occupancy.  The timing model
is a roofline with a wave-scheduling latency floor:

``T = launch_overhead + max(T_compute, T_memory, T_waves)``

* ``T_compute``  — total SM cycles divided by chip-wide issue capacity.
  Per-block cycle counts come from the strategy micro-models
  (:mod:`repro.kernels.strategies`), so a kernel whose inner loop round-
  trips shared memory is slower *here*, not via a fudge factor.
* ``T_memory``   — total DRAM bytes over effective bandwidth (scaled by a
  coalescing/gather efficiency for strided access patterns).
* ``T_waves``    — blocks are scheduled in waves of
  ``n_sm * blocks_per_sm``; each wave pays at least one block's latency.
  This is what starves kernels launched with few thread blocks (skinny
  panels near the top of the reduction tree) — the effect that makes
  1k x 192 run at 39 GFLOPS while 1M x 192 reaches 195 (Table I).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .counters import Counters
from .device import DeviceSpec

__all__ = ["LaunchSpec", "LaunchTiming", "occupancy_blocks_per_sm", "time_launch"]


@dataclass(frozen=True)
class LaunchSpec:
    """One GPU kernel launch."""

    kernel: str  # kernel name (factor / factor_tree / apply_qt_h / ...)
    n_blocks: int  # thread blocks in the grid
    threads_per_block: int
    cycles_per_block: float  # SM-issue cycles per block (strategy model)
    flops_per_block: float  # useful flops per block
    read_bytes_per_block: float
    write_bytes_per_block: float
    smem_per_block_bytes: int = 0
    regs_per_block_bytes: int = 0
    smem_transactions_per_block: float = 0.0
    bw_efficiency: float = 1.0  # coalescing/gather efficiency of this kernel
    tag: str = ""  # free-form label (panel index, tree level, ...)

    def counters(self) -> Counters:
        return Counters(
            flops=self.flops_per_block * self.n_blocks,
            gmem_read_bytes=self.read_bytes_per_block * self.n_blocks,
            gmem_write_bytes=self.write_bytes_per_block * self.n_blocks,
            smem_transactions=self.smem_transactions_per_block * self.n_blocks,
            kernel_launches=1,
            thread_blocks=self.n_blocks,
        )


@dataclass(frozen=True)
class LaunchTiming:
    """Timing breakdown of one launch."""

    seconds: float
    compute_s: float
    memory_s: float
    wave_s: float
    overhead_s: float
    blocks_per_sm: int
    limiter: str  # "compute" | "memory" | "latency" | "overhead"


def occupancy_blocks_per_sm(spec: LaunchSpec, dev: DeviceSpec) -> int:
    """Resident blocks per SM, limited by shared memory, registers, threads."""
    if spec.threads_per_block < 1 or spec.threads_per_block > dev.max_threads_per_block:
        raise ValueError(
            f"threads_per_block={spec.threads_per_block} outside [1, {dev.max_threads_per_block}]"
        )
    limit = dev.max_blocks_per_sm
    if spec.smem_per_block_bytes > 0:
        limit = min(limit, dev.smem_per_sm_bytes // spec.smem_per_block_bytes)
    if spec.regs_per_block_bytes > 0:
        limit = min(limit, dev.regfile_per_sm_bytes // spec.regs_per_block_bytes)
    # Fermi caps resident threads at 1536/SM; model with 3 x 512.
    limit = min(limit, (3 * dev.max_threads_per_block) // spec.threads_per_block)
    if limit < 1:
        raise ValueError(
            f"kernel {spec.kernel!r} block does not fit on an SM: "
            f"smem={spec.smem_per_block_bytes}B regs={spec.regs_per_block_bytes}B"
        )
    return int(limit)


def time_launch(spec: LaunchSpec, dev: DeviceSpec) -> LaunchTiming:
    """Apply the roofline + wave model to one launch."""
    if spec.n_blocks < 0:
        raise ValueError("n_blocks must be non-negative")
    overhead = dev.kernel_launch_us * 1e-6
    if spec.n_blocks == 0:
        return LaunchTiming(overhead, 0.0, 0.0, 0.0, overhead, 1, "overhead")
    bps = occupancy_blocks_per_sm(spec, dev)
    total_cycles = spec.cycles_per_block * spec.n_blocks
    # Low occupancy (few resident warps) cannot hide instruction and
    # memory latency: the SM's issue rate degrades proportionally below
    # ``min_warps_full_rate`` resident warps.
    warps = spec.threads_per_block / 32.0 * bps
    issue_eff = min(1.0, warps / dev.min_warps_full_rate)
    compute_s = total_cycles / (dev.n_sm * dev.clock_hz) / issue_eff
    total_bytes = (spec.read_bytes_per_block + spec.write_bytes_per_block) * spec.n_blocks
    eff_bw = dev.dram_bw_gbs * 1e9 * spec.bw_efficiency
    memory_s = total_bytes / eff_bw if eff_bw > 0 else 0.0
    concurrent = dev.n_sm * bps
    waves = math.ceil(spec.n_blocks / concurrent)
    wave_s = waves * (spec.cycles_per_block / dev.clock_hz + dev.dram_latency_us * 1e-6)
    body = max(compute_s, memory_s, wave_s)
    if body == compute_s:
        limiter = "compute"
    elif body == memory_s:
        limiter = "memory"
    else:
        limiter = "latency"
    if overhead > body:
        limiter = "overhead"
    return LaunchTiming(
        seconds=overhead + body,
        compute_s=compute_s,
        memory_s=memory_s,
        wave_s=wave_s,
        overhead_s=overhead,
        blocks_per_sm=bps,
        limiter=limiter,
    )
