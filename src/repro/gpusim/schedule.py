"""Dependency-aware event scheduling over hardware resources.

Section III's mapping question — where to run each step, and what
overlaps with what — is a scheduling problem over three serial
resources: the CPU, the GPU, and the PCIe link.  This module provides a
deterministic list scheduler: tasks declare a resource, a duration and
dependencies; each resource executes its tasks in program order, each
task starting when both its resource is free and its dependencies have
finished.  Look-ahead pipelines (MAGMA's CPU-panel overlap) then *emerge*
from the dependency structure instead of being hand-folded into
closed-form max() expressions — and the schedule can be rendered as a
Gantt chart for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Task", "EventSchedule"]


@dataclass
class Task:
    """One scheduled unit of work."""

    id: int
    name: str
    resource: str
    duration: float
    deps: tuple[int, ...]
    start: float = 0.0

    @property
    def finish(self) -> float:
        return self.start + self.duration


@dataclass
class EventSchedule:
    """Deterministic list schedule over named serial resources."""

    tasks: list[Task] = field(default_factory=list)
    _scheduled: bool = False

    def add(self, name: str, resource: str, duration: float, deps: tuple[int, ...] | list[int] = ()) -> int:
        """Append a task; returns its id for use in later ``deps``."""
        if duration < 0:
            raise ValueError("duration must be non-negative")
        for d in deps:
            if not (0 <= d < len(self.tasks)):
                raise ValueError(f"unknown dependency id {d}")
        t = Task(id=len(self.tasks), name=name, resource=resource, duration=duration, deps=tuple(deps))
        self.tasks.append(t)
        self._scheduled = False
        return t.id

    def _run(self) -> None:
        if self._scheduled:
            return
        free: dict[str, float] = {}
        for t in self.tasks:
            dep_ready = max((self.tasks[d].finish for d in t.deps), default=0.0)
            t.start = max(free.get(t.resource, 0.0), dep_ready)
            free[t.resource] = t.finish
        self._scheduled = True

    @property
    def makespan(self) -> float:
        self._run()
        return max((t.finish for t in self.tasks), default=0.0)

    def resource_busy(self, resource: str) -> float:
        """Total busy time of one resource."""
        self._run()
        return sum(t.duration for t in self.tasks if t.resource == resource)

    def resource_utilization(self, resource: str) -> float:
        ms = self.makespan
        return self.resource_busy(resource) / ms if ms > 0 else 0.0

    def critical_path(self) -> list[Task]:
        """One chain of tasks realizing the makespan (greedy backtrace)."""
        self._run()
        if not self.tasks:
            return []
        cur = max(self.tasks, key=lambda t: t.finish)
        chain = [cur]
        while True:
            # Predecessor: the dependency or same-resource task whose
            # finish equals (or binds) this task's start.
            cands = [self.tasks[d] for d in cur.deps]
            cands += [t for t in self.tasks if t.resource == cur.resource and t.id < cur.id]
            cands = [c for c in cands if abs(c.finish - cur.start) < 1e-15 and c.finish > 0]
            if not cands:
                break
            cur = max(cands, key=lambda t: t.finish)
            chain.append(cur)
        return list(reversed(chain))

    def gantt(self, width: int = 64, max_rows: int = 40) -> str:
        """ASCII Gantt chart (one row per task, grouped by resource)."""
        self._run()
        ms = self.makespan or 1.0
        lines = [f"schedule: {ms * 1e3:.3f} ms makespan"]
        resources = sorted({t.resource for t in self.tasks})
        shown = 0
        for res in resources:
            util = self.resource_utilization(res)
            lines.append(f"[{res}] utilization {util:5.1%}")
            for t in self.tasks:
                if t.resource != res:
                    continue
                if shown >= max_rows:
                    lines.append("  ...")
                    return "\n".join(lines)
                a = int(round(t.start / ms * width))
                b = max(a + 1, int(round(t.finish / ms * width)))
                bar = " " * a + "=" * (b - a)
                lines.append(f"  {t.name:<18.18} |{bar:<{width}}|")
                shown += 1
        return "\n".join(lines)
