"""Core numerics: the paper's primary contribution and its LAPACK substrate.

Everything here is implemented from scratch on NumPy element/matrix
operations: Householder reflectors and packed QR (``geqr2``/``geqrf``),
TSQR over configurable reduction trees, CAQR over a block grid, the
alternative QR algorithms of Section II (Givens, Gram-Schmidt, Cholesky
QR), a one-sided Jacobi SVD, the tall-skinny SVD-via-QR, and a QR-based
least-squares solver.
"""

from .blocked import blocked_qr, geqrf, larfb, larft, orgqr, ormqr
from .caqr import CAQRFactors, caqr, caqr_qr
from .cholesky_qr import cholesky_qr, cholesky_qr2
from .givens import givens_qr
from .gram_schmidt import cgs2, classical_gram_schmidt, modified_gram_schmidt
from .householder import geqr2, house, org2r, orm2r, qr_flops
from .jacobi_svd import jacobi_svd, svd_via_jacobi
from .randomized_svd import randomized_range_finder, randomized_svd
from .streaming import StreamingTSQR
from .structured import structured_stack_qr
from .lstsq import lstsq_caqr, lstsq_tsqr
from .pivoted import PivotedQR, numerical_rank, qr_pivoted
from .tree import TREE_SHAPES, TreeSchedule, build_tree
from .triangular import cholesky, solve_lower, solve_upper
from .ts_svd import tall_skinny_svd
from .tsqr import TSQRFactors, row_blocks, tsqr, tsqr_qr
from .validation import (
    factorization_error,
    is_factorization_accurate,
    orthogonality_error,
    sign_canonical,
    triangularity_error,
)

__all__ = [
    "blocked_qr",
    "geqrf",
    "larfb",
    "larft",
    "orgqr",
    "ormqr",
    "CAQRFactors",
    "caqr",
    "caqr_qr",
    "cholesky_qr",
    "cholesky_qr2",
    "givens_qr",
    "cgs2",
    "classical_gram_schmidt",
    "modified_gram_schmidt",
    "geqr2",
    "house",
    "org2r",
    "orm2r",
    "qr_flops",
    "jacobi_svd",
    "svd_via_jacobi",
    "randomized_range_finder",
    "randomized_svd",
    "StreamingTSQR",
    "structured_stack_qr",
    "lstsq_caqr",
    "lstsq_tsqr",
    "PivotedQR",
    "numerical_rank",
    "qr_pivoted",
    "TREE_SHAPES",
    "TreeSchedule",
    "build_tree",
    "cholesky",
    "solve_lower",
    "solve_upper",
    "tall_skinny_svd",
    "TSQRFactors",
    "row_blocks",
    "tsqr",
    "tsqr_qr",
    "factorization_error",
    "is_factorization_accurate",
    "orthogonality_error",
    "sign_canonical",
    "triangularity_error",
]
