"""Streaming (single-pass / out-of-core) TSQR.

The flat-tree TSQR is sequential: blocks of rows arrive one at a time,
each merged into the running R by factoring ``[R; new block]``.  That is
exactly the out-of-core / streaming regime ("if we choose block sizes
that fit in cache, we can achieve significant bandwidth savings",
Section II-B): the tall matrix is read once, only an ``n x n`` triangle
stays resident, and the per-block factors are retained so Q can still be
applied afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .dtypes import as_float_array, working_dtype
from .householder import geqr2, orm2r

__all__ = ["StreamingTSQR"]


@dataclass
class _StreamStep:
    """Factor of one merge step: QR of [R_prev; block]."""

    rows: tuple[int, int]  # global rows of the block within the stream
    r_rows: int  # rows contributed by the running R (0 for the first)
    VR: np.ndarray
    tau: np.ndarray


@dataclass
class StreamingTSQR:
    """Accumulate a tall matrix block-by-block; query R (and apply Q^T).

    Usage::

        st = StreamingTSQR(n_cols=16)
        for block in stream_of_row_blocks:
            st.push(block)
        R = st.R                    # factor of everything seen so far
        qtb = st.apply_qt(b)        # needs the concatenated rows of b
    """

    n_cols: int
    _steps: list[_StreamStep] = field(default_factory=list)
    _R: np.ndarray | None = None
    _rows_seen: int = 0
    _dtype: np.dtype | None = None  # stream working dtype, fixed per push

    @property
    def m(self) -> int:
        """Total rows consumed."""
        return self._rows_seen

    @property
    def n_blocks(self) -> int:
        return len(self._steps)

    @property
    def R(self) -> np.ndarray:
        """Upper-triangular factor of all rows pushed so far."""
        if self._R is None:
            raise ValueError("no blocks pushed yet")
        k = min(self._rows_seen, self.n_cols)
        if self._R.shape[0] < k:  # degenerate short stream
            pad = np.zeros((k - self._R.shape[0], self.n_cols), dtype=self._R.dtype)
            return np.vstack([self._R, pad])
        return self._R[:k]

    def push(self, block: np.ndarray) -> "StreamingTSQR":
        """Merge one block of rows (any height >= 1) into the stream."""
        block = as_float_array(block)
        if block.ndim != 2 or block.shape[1] != self.n_cols:
            raise ValueError(f"block must be 2-D with {self.n_cols} columns")
        if block.shape[0] < 1:
            raise ValueError("block must have at least one row")
        start = self._rows_seen
        stop = start + block.shape[0]
        # Normalize the stream's working dtype once per promotion instead
        # of re-casting the running R on every push: all retained step
        # factors share one dtype, so later applies never cast per step.
        dt = np.result_type(block.dtype) if self._dtype is None else np.result_type(self._dtype, block.dtype)
        if dt != self._dtype:
            self._dtype = dt
            if self._R is not None:
                self._R = self._R.astype(dt)
        block = block.astype(dt, copy=False)
        if self._R is None:
            stacked = block
            r_rows = 0
        else:
            stacked = np.vstack([self._R, block])
            r_rows = self._R.shape[0]
        VR, tau = geqr2(stacked)
        k = min(stacked.shape[0], self.n_cols)
        self._R = np.triu(VR[:k, :])
        self._steps.append(_StreamStep(rows=(start, stop), r_rows=r_rows, VR=VR, tau=tau))
        self._rows_seen = stop
        return self

    def apply_qt(self, B: np.ndarray) -> np.ndarray:
        """``Q^T B`` for B with all ``m`` streamed rows (same row order).

        Walks the merge steps forward, carrying the running-R slot (up to
        ``n`` rows) through each step — the same dataflow by which R was
        accumulated.  Explicit home-position bookkeeping keeps every row
        accounted for even when early blocks are shorter than ``n``.
        """
        B = as_float_array(B)
        if B.shape[0] != self._rows_seen:
            raise ValueError(f"B must have {self._rows_seen} rows, got {B.shape[0]}")
        squeeze = B.ndim == 1
        W = B.reshape(self._rows_seen, -1).astype(working_dtype(B), copy=True)
        carry = np.zeros((0, W.shape[1]), dtype=W.dtype)
        homes = np.zeros(0, dtype=np.intp)  # global rows the carry occupies
        for step in self._steps:
            s, e = step.rows
            stacked = np.vstack([carry, W[s:e]])
            combined_homes = np.concatenate([homes, np.arange(s, e)])
            orm2r(step.VR, step.tau, stacked, transpose=True)
            k = min(stacked.shape[0], self.n_cols)
            carry = stacked[:k].copy()
            homes = combined_homes[:k]
            finalized = stacked[k:]
            W[combined_homes[k:]] = finalized
        W[homes] = carry
        return W.ravel() if squeeze else W
