"""Randomized partial SVD with a TSQR range finder.

The Robust PCA iteration only needs the singular values above the
threshold, yet Section VI computes a full thin SVD each time.  A
randomized range finder (Halko-Martinsson-Tropp) needs exactly one
tall-skinny QR — this library's specialty — of the sampled matrix
``A Omega``: a natural extension the paper's machinery makes cheap, and
the basis of the rank-adaptive SVT in :mod:`repro.rpca`.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.policy import UNSET, ExecutionPolicy, resolve_policy
from repro.verify.guards import validate_matrix

from .jacobi_svd import jacobi_svd
from .tsqr import _tsqr_impl

__all__ = ["randomized_range_finder", "randomized_svd"]

# The range finder samples thin (k + oversample wide) matrices, so the
# paper's 64-row blocks would make needlessly deep trees: 256 rows is the
# pre-policy default, kept as this module's base policy.
_RSVD_DEFAULT = ExecutionPolicy(block_rows=256)


def _tsqr_q(Y: np.ndarray, policy: ExecutionPolicy) -> np.ndarray:
    """Explicit TSQR Q under ``policy``, threading its column formation
    when the policy carries workers.

    Internal only — the caller validated its input already, so this goes
    straight to :func:`~repro.core.tsqr._tsqr_impl` (no guard re-scan).
    """
    f = _tsqr_impl(
        Y,
        block_rows=policy.block_rows,
        tree_shape=policy.tree_shape,
        structured=policy.uses_structured,
        batched=policy.uses_batched,
    )
    if policy.effective_workers > 1:
        from repro.graph.executor import form_q_columns

        return form_q_columns(f, workers=policy.effective_workers)
    return f.form_q()


def _resolve_rsvd_policy(where, policy, batched, workers, nonfinite, block_rows=UNSET):
    """Shared legacy-kwarg shim for the SVD pipeline entry points.

    ``workers`` here threads the explicit-Q formation
    (:func:`repro.graph.executor.form_q_columns`), which the policy layer
    models as the look-ahead path's worker count.
    """
    return resolve_policy(
        where,
        policy,
        batched=batched,
        workers=workers,
        nonfinite=nonfinite,
        block_rows=block_rows,
        default=_RSVD_DEFAULT,
    )


def randomized_range_finder(
    A: np.ndarray,
    k: int,
    oversample: int = 8,
    power_iters: int = 1,
    rng: np.random.Generator | None = None,
    block_rows: int = UNSET,
    batched: bool = UNSET,
    workers: int | None = UNSET,
    nonfinite: str = UNSET,
    *,
    policy: ExecutionPolicy | None = None,
) -> np.ndarray:
    """Orthonormal basis approximately spanning A's leading k-range.

    ``Q = tsqr_qr(A @ Omega)`` with Gaussian ``Omega`` and optional
    power iterations (each one re-orthogonalized through TSQR for
    stability).  A ``policy`` with ``workers > 1`` threads the explicit-Q
    formation through :func:`repro.graph.executor.form_q_columns`.  The
    SVD pipeline computes in float64 regardless of input precision.
    """
    policy = _resolve_rsvd_policy(
        "randomized_range_finder", policy, batched, workers, nonfinite, block_rows
    )
    A = validate_matrix(
        A, where="randomized_range_finder", nonfinite=policy.nonfinite, dtype=np.float64
    )
    m, n = A.shape
    if k < 1:
        raise ValueError("target rank k must be >= 1")
    ell = min(k + oversample, n)
    rng = rng or np.random.default_rng(0)
    Y = A @ rng.standard_normal((n, ell))
    Q = _tsqr_q(Y, policy)
    for _ in range(power_iters):
        Z = A.T @ Q
        if n < policy.block_rows:
            Zq, _ = np.linalg.qr(Z)
        else:
            Zq = _tsqr_q(Z, policy)
        Y = A @ Zq
        Q = _tsqr_q(Y, policy)
    return Q


def randomized_svd(
    A: np.ndarray,
    k: int,
    oversample: int = 8,
    power_iters: int = 1,
    rng: np.random.Generator | None = None,
    batched: bool = UNSET,
    workers: int | None = UNSET,
    nonfinite: str = UNSET,
    *,
    policy: ExecutionPolicy | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Approximate rank-k thin SVD ``A ~= U diag(s) V^T``.

    Returns factors truncated to ``k`` columns.  Accuracy follows the HMT
    bounds: near-exact when A's spectrum decays past rank k (exactly the
    Robust PCA situation, where L is low-rank by construction).
    """
    policy = _resolve_rsvd_policy("randomized_svd", policy, batched, workers, nonfinite)
    A = validate_matrix(A, where="randomized_svd", nonfinite=policy.nonfinite, dtype=np.float64)
    m, n = A.shape
    if m < n:
        U, s, Vt = randomized_svd(
            A.T,
            k,
            oversample,
            power_iters,
            rng,
            policy=policy.with_nonfinite("propagate"),
        )
        return Vt.T, s, U.T
    Q = randomized_range_finder(
        A,
        k,
        oversample,
        power_iters,
        rng,
        policy=policy.with_nonfinite("propagate"),
    )
    B = Q.T @ A  # ell x n, small
    Ub, s, Vt = jacobi_svd(B.T)  # jacobi wants tall: factor B^T
    # B = (Vt.T * s) @ Ub.T  =>  B's left vectors are Vt.T's columns.
    U_small, s, Vt_small = Vt.T, s, Ub.T
    U = Q @ U_small
    k = min(k, s.size)
    return U[:, :k], s[:k], Vt_small[:k]
