"""Randomized partial SVD with a TSQR range finder.

The Robust PCA iteration only needs the singular values above the
threshold, yet Section VI computes a full thin SVD each time.  A
randomized range finder (Halko-Martinsson-Tropp) needs exactly one
tall-skinny QR — this library's specialty — of the sampled matrix
``A Omega``: a natural extension the paper's machinery makes cheap, and
the basis of the rank-adaptive SVT in :mod:`repro.rpca`.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.policy import UNSET, ExecutionPolicy, resolve_policy
from repro.verify.guards import validate_matrix

from .jacobi_svd import jacobi_svd
from .tsqr import _tsqr_impl

__all__ = [
    "emit_rsvd_layers",
    "randomized_range_finder",
    "randomized_svd",
    "randomized_svd_graph",
]

# The range finder samples thin (k + oversample wide) matrices, so the
# paper's 64-row blocks would make needlessly deep trees: 256 rows is the
# pre-policy default, kept as this module's base policy.
_RSVD_DEFAULT = ExecutionPolicy(block_rows=256)


def _tsqr_q(Y: np.ndarray, policy: ExecutionPolicy) -> np.ndarray:
    """Explicit TSQR Q under ``policy``, threading its column formation
    when the policy carries workers.

    Internal only — the caller validated its input already, so this goes
    straight to :func:`~repro.core.tsqr._tsqr_impl` (no guard re-scan).
    """
    f = _tsqr_impl(
        Y,
        block_rows=policy.block_rows,
        tree_shape=policy.tree_shape,
        structured=policy.uses_structured,
        batched=policy.uses_batched,
    )
    if policy.effective_workers > 1:
        from repro.graph.executor import form_q_columns

        return form_q_columns(f, workers=policy.effective_workers)
    return f.form_q()


def _resolve_rsvd_policy(where, policy, batched, workers, nonfinite, block_rows=UNSET):
    """Shared legacy-kwarg shim for the SVD pipeline entry points.

    ``workers`` here threads the explicit-Q formation
    (:func:`repro.graph.executor.form_q_columns`), which the policy layer
    models as the look-ahead path's worker count.
    """
    return resolve_policy(
        where,
        policy,
        batched=batched,
        workers=workers,
        nonfinite=nonfinite,
        block_rows=block_rows,
        default=_RSVD_DEFAULT,
    )


def randomized_range_finder(
    A: np.ndarray,
    k: int,
    oversample: int = 8,
    power_iters: int = 1,
    rng: np.random.Generator | None = None,
    block_rows: int = UNSET,
    batched: bool = UNSET,
    workers: int | None = UNSET,
    nonfinite: str = UNSET,
    *,
    policy: ExecutionPolicy | None = None,
) -> np.ndarray:
    """Orthonormal basis approximately spanning A's leading k-range.

    ``Q = tsqr_qr(A @ Omega)`` with Gaussian ``Omega`` and optional
    power iterations (each one re-orthogonalized through TSQR for
    stability).  A ``policy`` with ``workers > 1`` threads the explicit-Q
    formation through :func:`repro.graph.executor.form_q_columns`.  The
    SVD pipeline computes in float64 regardless of input precision.
    """
    policy = _resolve_rsvd_policy(
        "randomized_range_finder", policy, batched, workers, nonfinite, block_rows
    )
    A = validate_matrix(
        A, where="randomized_range_finder", nonfinite=policy.nonfinite, dtype=np.float64
    )
    m, n = A.shape
    if k < 1:
        raise ValueError("target rank k must be >= 1")
    ell = min(k + oversample, n)
    rng = rng or np.random.default_rng(0)
    Y = A @ rng.standard_normal((n, ell))
    Q = _tsqr_q(Y, policy)
    for _ in range(power_iters):
        Z = A.T @ Q
        if n < policy.block_rows:
            Zq, _ = np.linalg.qr(Z)
        else:
            Zq = _tsqr_q(Z, policy)
        Y = A @ Zq
        Q = _tsqr_q(Y, policy)
    return Q


def randomized_svd(
    A: np.ndarray,
    k: int,
    oversample: int = 8,
    power_iters: int = 1,
    rng: np.random.Generator | None = None,
    batched: bool = UNSET,
    workers: int | None = UNSET,
    nonfinite: str = UNSET,
    *,
    policy: ExecutionPolicy | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Approximate rank-k thin SVD ``A ~= U diag(s) V^T``.

    Returns factors truncated to ``k`` columns.  Accuracy follows the HMT
    bounds: near-exact when A's spectrum decays past rank k (exactly the
    Robust PCA situation, where L is low-rank by construction).
    """
    policy = _resolve_rsvd_policy("randomized_svd", policy, batched, workers, nonfinite)
    A = validate_matrix(A, where="randomized_svd", nonfinite=policy.nonfinite, dtype=np.float64)
    m, n = A.shape
    if m < n:
        U, s, Vt = randomized_svd(
            A.T,
            k,
            oversample,
            power_iters,
            rng,
            policy=policy.with_nonfinite("propagate"),
        )
        return Vt.T, s, U.T
    Q = randomized_range_finder(
        A,
        k,
        oversample,
        power_iters,
        rng,
        policy=policy.with_nonfinite("propagate"),
    )
    B = Q.T @ A  # ell x n, small
    Ub, s, Vt = jacobi_svd(B.T)  # jacobi wants tall: factor B^T
    # B = (Vt.T * s) @ Ub.T  =>  B's left vectors are Vt.T's columns.
    U_small, s, Vt_small = Vt.T, s, Ub.T
    U = Q @ U_small
    k = min(k, s.size)
    return U[:, :k], s[:k], Vt_small[:k]


# ---------------------------------------------------------------------------
# Task-graph producer --------------------------------------------------------
# ---------------------------------------------------------------------------


def emit_rsvd_layers(
    m: int,
    n: int,
    k: int,
    oversample: int = 8,
    power_iters: int = 1,
    policy: ExecutionPolicy | None = None,
    bind: dict | None = None,
):
    """Compile the rSVD pipeline into four task-graph layers.

    ``sketch`` (Gaussian sampling / re-sampling ``Y = A @ Omega``),
    ``qr`` (the TSQR orthonormalizations — the paper's kernel),
    ``project`` (the ``A``-side GEMMs of the power iteration and the
    final ``B = Qᵀ A``) and ``svd`` (the small Jacobi SVD + truncation).
    Registered as the ``rsvd`` producer in
    :data:`repro.graph.highlevel.PRODUCERS`.

    Without ``bind``, the graph is structural (``fn=None``) — pure shape
    arithmetic, which is what the CI fingerprint gate pins.  With
    ``bind`` (a dict holding ``A`` and ``rng``), each task carries a
    closure reading and writing the bind state; dependencies are a
    single chain, so any topological execution performs the exact
    operation sequence of :func:`randomized_svd` — bit-identical by
    construction.  Results land in ``bind["U"]/["s"]/["Vt"]``.
    """
    if m < 1 or n < 1:
        raise ValueError("matrix dimensions must be positive")
    if k < 1:
        raise ValueError("target rank k must be >= 1")
    from repro.graph.highlevel import TaskGraph

    policy = policy if policy is not None else _RSVD_DEFAULT
    ell = min(k + oversample, n)
    st = bind

    def payload(f):
        return f if st is not None else None

    tg = TaskGraph(name=f"rsvd[{m}x{n}]")
    tg.add_layer("sketch")
    tg.add_layer("qr")
    tg.add_layer("project")
    tg.add_layer("svd")

    def do_sketch() -> None:
        st["Y"] = st["A"] @ st["rng"].standard_normal((n, ell))

    def do_qr() -> None:
        st["Q"] = _tsqr_q(st["Y"], policy)

    def do_power_project() -> None:
        st["Z"] = st["A"].T @ st["Q"]

    def do_power_qr() -> None:
        if n < policy.block_rows:
            st["Zq"] = np.linalg.qr(st["Z"])[0]
        else:
            st["Zq"] = _tsqr_q(st["Z"], policy)

    def do_power_sketch() -> None:
        st["Y"] = st["A"] @ st["Zq"]

    def do_project() -> None:
        st["B"] = st["Q"].T @ st["A"]

    def do_svd() -> None:
        Ub, s, Vt = jacobi_svd(st["B"].T)
        U_small, s, Vt_small = Vt.T, s, Ub.T
        U = st["Q"] @ U_small
        kk = min(k, s.size)
        st["U"], st["s"], st["Vt"] = U[:, :kk], s[:kk], Vt_small[:kk]

    prev = tg.add_task("sketch", ("sketch", 0), payload(do_sketch), ell=ell)
    prev = tg.add_task("qr", ("qr", 0), payload(do_qr), deps=[prev])
    for i in range(power_iters):
        prev = tg.add_task(
            "project", ("power_project", i), payload(do_power_project), deps=[prev]
        )
        prev = tg.add_task("qr", ("power_qr", i), payload(do_power_qr), deps=[prev])
        prev = tg.add_task(
            "sketch", ("sketch", i + 1), payload(do_power_sketch), deps=[prev]
        )
        prev = tg.add_task("qr", ("qr", i + 1), payload(do_qr), deps=[prev])
    prev = tg.add_task("project", ("project",), payload(do_project), deps=[prev])
    tg.add_task("svd", ("svd",), payload(do_svd), deps=[prev], k=k)
    return tg


def randomized_svd_graph(
    A: np.ndarray,
    k: int,
    oversample: int = 8,
    power_iters: int = 1,
    rng: np.random.Generator | None = None,
    *,
    policy: ExecutionPolicy | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """:func:`randomized_svd` compiled to a task graph and run on the
    shared executor (:func:`repro.graph.executor.run_task_graph`).

    Performs the identical operation sequence task by task, so the
    result is bit-identical to the direct call — while every stage gets
    an obs span and the pipeline composes with other graphs.
    """
    policy = _resolve_rsvd_policy("randomized_svd_graph", policy, UNSET, UNSET, UNSET)
    A = validate_matrix(
        A, where="randomized_svd_graph", nonfinite=policy.nonfinite, dtype=np.float64
    )
    m, n = A.shape
    if m < n:
        U, s, Vt = randomized_svd_graph(
            A.T,
            k,
            oversample,
            power_iters,
            rng,
            policy=policy.with_nonfinite("propagate"),
        )
        return Vt.T, s, U.T
    from repro.graph.executor import run_task_graph

    st: dict = {"A": A, "rng": rng or np.random.default_rng(0)}
    tg = emit_rsvd_layers(m, n, k, oversample, power_iters, policy=policy, bind=st)
    run_task_graph(tg, workers=policy.effective_workers, instrument=True)
    return st["U"], st["s"], st["Vt"]
