"""Randomized partial SVD with a TSQR range finder.

The Robust PCA iteration only needs the singular values above the
threshold, yet Section VI computes a full thin SVD each time.  A
randomized range finder (Halko-Martinsson-Tropp) needs exactly one
tall-skinny QR — this library's specialty — of the sampled matrix
``A Omega``: a natural extension the paper's machinery makes cheap, and
the basis of the rank-adaptive SVT in :mod:`repro.rpca`.
"""

from __future__ import annotations

import numpy as np

from repro.verify.guards import validate_matrix

from .jacobi_svd import jacobi_svd
from .tsqr import tsqr, tsqr_qr

__all__ = ["randomized_range_finder", "randomized_svd"]


def _tsqr_q(Y: np.ndarray, block_rows: int, batched: bool, workers: int | None) -> np.ndarray:
    """Explicit TSQR Q, threading its column formation when asked.

    Internal only — the caller validated its input already, so the TSQR
    guard runs in ``propagate`` mode.
    """
    if workers is not None and workers > 1:
        from repro.graph.executor import form_q_columns

        f = tsqr(Y, block_rows=block_rows, batched=batched, nonfinite="propagate")
        return form_q_columns(f, workers=workers)
    Q, _ = tsqr_qr(Y, block_rows=block_rows, batched=batched, nonfinite="propagate")
    return Q


def randomized_range_finder(
    A: np.ndarray,
    k: int,
    oversample: int = 8,
    power_iters: int = 1,
    rng: np.random.Generator | None = None,
    block_rows: int = 256,
    batched: bool = True,
    workers: int | None = None,
    nonfinite: str = "raise",
) -> np.ndarray:
    """Orthonormal basis approximately spanning A's leading k-range.

    ``Q = tsqr_qr(A @ Omega)`` with Gaussian ``Omega`` and optional
    power iterations (each one re-orthogonalized through TSQR for
    stability).  ``workers > 1`` threads the explicit-Q formation through
    :func:`repro.graph.executor.form_q_columns`.  The SVD pipeline
    computes in float64 regardless of input precision.
    """
    A = validate_matrix(A, where="randomized_range_finder", nonfinite=nonfinite, dtype=np.float64)
    m, n = A.shape
    if k < 1:
        raise ValueError("target rank k must be >= 1")
    ell = min(k + oversample, n)
    rng = rng or np.random.default_rng(0)
    Y = A @ rng.standard_normal((n, ell))
    Q = _tsqr_q(Y, block_rows, batched, workers)
    for _ in range(power_iters):
        Z = A.T @ Q
        if n < block_rows:
            Zq, _ = np.linalg.qr(Z)
        else:
            Zq = _tsqr_q(Z, block_rows, batched, workers)
        Y = A @ Zq
        Q = _tsqr_q(Y, block_rows, batched, workers)
    return Q


def randomized_svd(
    A: np.ndarray,
    k: int,
    oversample: int = 8,
    power_iters: int = 1,
    rng: np.random.Generator | None = None,
    batched: bool = True,
    workers: int | None = None,
    nonfinite: str = "raise",
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Approximate rank-k thin SVD ``A ~= U diag(s) V^T``.

    Returns factors truncated to ``k`` columns.  Accuracy follows the HMT
    bounds: near-exact when A's spectrum decays past rank k (exactly the
    Robust PCA situation, where L is low-rank by construction).
    """
    A = validate_matrix(A, where="randomized_svd", nonfinite=nonfinite, dtype=np.float64)
    m, n = A.shape
    if m < n:
        U, s, Vt = randomized_svd(
            A.T,
            k,
            oversample,
            power_iters,
            rng,
            batched=batched,
            workers=workers,
            nonfinite="propagate",
        )
        return Vt.T, s, U.T
    Q = randomized_range_finder(
        A,
        k,
        oversample,
        power_iters,
        rng,
        batched=batched,
        workers=workers,
        nonfinite="propagate",
    )
    B = Q.T @ A  # ell x n, small
    Ub, s, Vt = jacobi_svd(B.T)  # jacobi wants tall: factor B^T
    # B = (Vt.T * s) @ Ub.T  =>  B's left vectors are Vt.T's columns.
    U_small, s, Vt_small = Vt.T, s, Ub.T
    U = Q @ U_small
    k = min(k, s.size)
    return U[:, :k], s[:k], Vt_small[:k]
