"""Randomized partial SVD with a TSQR range finder.

The Robust PCA iteration only needs the singular values above the
threshold, yet Section VI computes a full thin SVD each time.  A
randomized range finder (Halko-Martinsson-Tropp) needs exactly one
tall-skinny QR — this library's specialty — of the sampled matrix
``A Omega``: a natural extension the paper's machinery makes cheap, and
the basis of the rank-adaptive SVT in :mod:`repro.rpca`.
"""

from __future__ import annotations

import numpy as np

from .jacobi_svd import jacobi_svd
from .tsqr import tsqr_qr

__all__ = ["randomized_range_finder", "randomized_svd"]


def randomized_range_finder(
    A: np.ndarray,
    k: int,
    oversample: int = 8,
    power_iters: int = 1,
    rng: np.random.Generator | None = None,
    block_rows: int = 256,
    batched: bool = True,
) -> np.ndarray:
    """Orthonormal basis approximately spanning A's leading k-range.

    ``Q = tsqr_qr(A @ Omega)`` with Gaussian ``Omega`` and optional
    power iterations (each one re-orthogonalized through TSQR for
    stability).
    """
    A = np.asarray(A, dtype=float)
    m, n = A.shape
    if k < 1:
        raise ValueError("target rank k must be >= 1")
    ell = min(k + oversample, n)
    rng = rng or np.random.default_rng(0)
    Y = A @ rng.standard_normal((n, ell))
    Q, _ = tsqr_qr(Y, block_rows=block_rows, batched=batched)
    for _ in range(power_iters):
        Z = A.T @ Q
        Zq, _ = (
            np.linalg.qr(Z)
            if n < block_rows
            else tsqr_qr(Z, block_rows=block_rows, batched=batched)
        )
        Y = A @ Zq
        Q, _ = tsqr_qr(Y, block_rows=block_rows, batched=batched)
    return Q


def randomized_svd(
    A: np.ndarray,
    k: int,
    oversample: int = 8,
    power_iters: int = 1,
    rng: np.random.Generator | None = None,
    batched: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Approximate rank-k thin SVD ``A ~= U diag(s) V^T``.

    Returns factors truncated to ``k`` columns.  Accuracy follows the HMT
    bounds: near-exact when A's spectrum decays past rank k (exactly the
    Robust PCA situation, where L is low-rank by construction).
    """
    A = np.asarray(A, dtype=float)
    m, n = A.shape
    if m < n:
        U, s, Vt = randomized_svd(A.T, k, oversample, power_iters, rng, batched=batched)
        return Vt.T, s, U.T
    Q = randomized_range_finder(A, k, oversample, power_iters, rng, batched=batched)
    B = Q.T @ A  # ell x n, small
    Ub, s, Vt = jacobi_svd(B.T)  # jacobi wants tall: factor B^T
    # B = (Vt.T * s) @ Ub.T  =>  B's left vectors are Vt.T's columns.
    U_small, s, Vt_small = Vt.T, s, Ub.T
    U = Q @ U_small
    k = min(k, s.size)
    return U[:, :k], s[:k], Vt_small[:k]
