"""Cholesky QR and CholeskyQR2 — the fast-but-unstable alternative.

Section II: "Cholesky QR and the Gram-Schmidt process are not as
numerically stable, so most general-purpose software for QR uses either
Givens rotations or Householder reflectors."  We implement Cholesky QR so
the stability comparison is demonstrable: its orthogonality error grows
with ``cond(A)^2`` while TSQR's stays at machine precision, and it fails
outright (Cholesky breakdown) near ``cond(A) ~ 1/sqrt(eps)``.

CholeskyQR2 (a single reorthogonalization pass) is also provided as the
modern partial fix.
"""

from __future__ import annotations

import numpy as np

from .triangular import cholesky, solve_lower

__all__ = ["cholesky_qr", "cholesky_qr2"]


def cholesky_qr(A: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """QR via ``A^T A = R^T R``; ``Q = A R^{-1}``.

    Communication-optimal (one pass over A) but squares the condition
    number.  Raises :class:`repro.core.triangular.SingularTriangularError`
    when the Gram matrix is not numerically positive definite.
    """
    from repro.verify.guards import validate_matrix

    A = validate_matrix(A, where="cholesky_qr", dtype=np.float64)
    m, n = A.shape
    if m < n:
        raise ValueError("cholesky_qr requires m >= n")
    G = A.T @ A
    L = cholesky(G)
    R = L.T
    # Q = A R^{-1}  <=>  R^T Q^T = A^T  <=>  solve L X = A^T, Q = X^T.
    Q = solve_lower(L, A.T).T
    return Q, R


def cholesky_qr2(A: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """CholeskyQR2: run Cholesky QR twice and merge the R factors."""
    Q1, R1 = cholesky_qr(A)
    Q, R2 = cholesky_qr(Q1)
    return Q, R2 @ R1
