"""Cholesky QR, CholeskyQR2, and the guarded BLAS3 fast-path engine.

Section II: "Cholesky QR and the Gram-Schmidt process are not as
numerically stable, so most general-purpose software for QR uses either
Givens rotations or Householder reflectors."  We implement Cholesky QR so
the stability comparison is demonstrable: its orthogonality error grows
with ``cond(A)^2`` while TSQR's stays at machine precision, and it fails
outright (Cholesky breakdown) near ``cond(A) ~ 1/sqrt(eps)``.

CholeskyQR2 (a single reorthogonalization pass) fixes the orthogonality
loss for moderately conditioned input, and on GPUs it is the *fast*
tall-skinny path: two BLAS3 passes (~4mn^2 flops, O(1) kernel launches)
vs the reduction tree's ~100 launches.  :func:`cholqr2_factor` is that
engine, promoted from background demo to a first-class execution path:

* column equilibration in float64 (huge/tiny inputs factor without
  overflow — the scale folds back into R);
* Gram accumulation / triangular multiplies via :mod:`repro.smallblas`
  (single ``syrk``/``trmm`` calls when SciPy's BLAS is importable,
  blocked NumPy otherwise);
* a *fused* second pass when the first-pass condition estimate is tiny:
  the reorthogonalization Gram is the exact small-matrix algebra
  ``G2 = R1^{-T} G1 R1^{-1}``, so the second ``syrk`` over all ``m``
  rows and one of the two big triangular multiplies disappear;
* an optional float32 first-pass Gram (``mixed=True``) — only the Gram
  accumulation drops precision; the Cholesky/inverse smalls and both
  ``m x n`` multiplies stay float64, and the float64
  reorthogonalization pass restores full orthogonality;
* breakdown *signaling*: a failed Cholesky raises
  :class:`CholeskyBreakdownError` carrying the stage and condition
  estimate, so the runtime layer can fall back to the Householder tree
  instead of surfacing a bare linear-algebra error.

The engine makes **no** accept/reject decisions itself: the ``check``
callback (owned by :class:`repro.runtime.cholqr.CholQRGuard`) sees the
condition estimates and the post-hoc ``||Q1^T Q1 - I||`` and may raise
to stop the factorization.  ``tools/lint_layering.py`` enforces that
split.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.smallblas.gram import (
    gram,
    tri_inv_upper,
    trmm_right_inplace,
    trsm_right_inplace,
)

from .triangular import SingularTriangularError, cholesky

__all__ = [
    "CholQRInfo",
    "CholQRWorkspace",
    "CholeskyBreakdownError",
    "FUSED_COND_LIMIT",
    "cholesky_qr",
    "cholesky_qr2",
    "cholqr2_factor",
]

# The fused second pass replaces the big reorthogonalization syrk with
# exact small-matrix algebra, but its final combined triangular multiply
# rounds like eps * n * cond(A); restrict it to essentially orthonormal
# first passes so both variants keep orthogonality at machine precision.
FUSED_COND_LIMIT = 16.0


class CholeskyBreakdownError(SingularTriangularError):
    """Cholesky of a Gram matrix failed mid-CholeskyQR2.

    Subclasses :class:`SingularTriangularError` so existing callers that
    treat Cholesky QR breakdown as "input too ill-conditioned" keep
    working; carries ``stage`` (``"gram"`` / ``"reorth"``) and the last
    ``condest`` so the runtime fallback can report *why* it bailed.
    """

    def __init__(self, message: str, *, stage: str = "gram",
                 condest: float | None = None):
        super().__init__(message)
        self.stage = stage
        self.condest = condest


@dataclass
class CholQRInfo:
    """What one :func:`cholqr2_factor` run did (for spans and tests)."""

    condest: float  # max/min diagonal ratio of the first Cholesky factor
    orth1: float  # ||Q1^T Q1 - I||_F after pass 1 (pass-2 convergence)
    fused: bool  # second pass ran as small-matrix algebra
    mixed: bool  # first-pass Gram accumulated in float32


class CholQRWorkspace:
    """Reusable scratch for repeated same-shape factorizations.

    ``QRPlan`` holds one per thread: the mixed path's float32 Gram cast
    buffer (the only O(m n) intermediate the engine does not hand back
    to the caller) is allocated once and reused across ``execute`` calls.
    """

    def __init__(self) -> None:
        self._bufs: dict = {}

    def array(self, tag: str, shape: tuple, dtype) -> np.ndarray:
        key = (tag, shape, np.dtype(dtype))
        buf = self._bufs.get(key)
        if buf is None:
            buf = np.empty(shape, dtype=dtype)
            self._bufs[key] = buf
        return buf


def _chol_r(G: np.ndarray, *, stage: str) -> np.ndarray:
    """Upper-triangular ``R`` with ``R^T R = G``, in float64.

    LAPACK-backed (``np.linalg.cholesky``, same vendor kernel family as
    the ``mode="raw"`` QR the executor uses); any failure — indefinite
    Gram, non-finite entries, zero pivot — becomes a
    :class:`CholeskyBreakdownError` tagged with the stage.
    """
    G64 = np.ascontiguousarray(G, dtype=np.float64)
    try:
        L = np.linalg.cholesky(G64)
    except np.linalg.LinAlgError:
        raise CholeskyBreakdownError(
            f"cholqr2: Gram matrix is not numerically positive definite "
            f"(Cholesky breakdown during {stage!r} pass)",
            stage=stage,
        ) from None
    d = np.diagonal(L)
    if not np.isfinite(L).all() or (d.size and not (d > 0.0).all()):
        raise CholeskyBreakdownError(
            f"cholqr2: non-finite or non-positive pivot during {stage!r} pass",
            stage=stage,
        )
    return np.ascontiguousarray(L.T)


def _column_scales(A: np.ndarray) -> np.ndarray:
    """Float64 column norms with overflow/underflow protection.

    The plain sum-of-squares accumulates in float64, which covers every
    float32 input; float64 data near 1e150 squares past the float64
    range, so those columns are re-measured under a max-abs pre-scale.
    Exactly zero columns get scale 1.0 (the Gram pivot then reports the
    rank deficiency as a breakdown instead of a 0/0).
    """
    s = np.sqrt(np.einsum("ij,ij->j", A, A, dtype=np.float64))
    if not np.isfinite(s).all() or (s.size and s.min() == 0.0):
        cmax = np.abs(A).max(axis=0).astype(np.float64) if A.shape[0] else None
        if cmax is not None:
            c = np.where(cmax > 0.0, cmax, 1.0)
            B = A / c[None, :]
            s = c * np.sqrt(np.einsum("ij,ij->j", B, B, dtype=np.float64))
        s[s == 0.0] = 1.0
        s[~np.isfinite(s)] = 1.0
    return s


def cholqr2_factor(
    A: np.ndarray,
    *,
    mixed: bool = False,
    workspace: CholQRWorkspace | None = None,
    check=None,
) -> tuple[np.ndarray, np.ndarray, CholQRInfo]:
    """The CholeskyQR2 engine: ``A = Q R`` for validated tall input.

    ``A`` must already be guard-validated (real float32/float64, 2-D,
    ``m >= n``); the public entry points and :mod:`repro.runtime` own
    that.  ``check(stage, value)`` is called with ``"condest_sample"``
    (cheap row-sampled estimate, tall inputs only), ``"condest"`` (the
    first Cholesky factor's diagonal ratio) and ``"orth1"``
    (``||Q1^T Q1 - I||_F``); it may raise to refuse the factorization —
    the engine never decides acceptability itself.

    Returns ``(Q, R, info)`` with ``Q, R`` in ``A``'s dtype.
    """
    m, n = A.shape
    if m < n:
        raise ValueError("cholqr2_factor requires m >= n")
    dtype = A.dtype
    if n == 0 or m == 0:
        k = min(m, n)
        return (
            np.zeros((m, k), dtype=dtype),
            np.zeros((k, n), dtype=dtype),
            CholQRInfo(condest=1.0, orth1=0.0, fused=False, mixed=mixed),
        )

    # -- equilibrate: W = A diag(1/s), ||W[:, j]|| ~= 1 --------------------
    s = _column_scales(A)
    if check is not None and m >= 16 * n:
        # Row-sampled condition precheck: ~8n deterministically strided
        # rows cost ~1% of the full Gram, so a wildly ill-conditioned
        # input can be rejected before any O(mn) work.
        step = m // (8 * n)
        Ws = A[::step].astype(np.float64, copy=True) / s[None, :]
        Gs = Ws.T @ Ws
        try:
            ds = np.diagonal(_chol_r(Gs, stage="sample"))
            sample = float(ds.max() / ds.min())
        except CholeskyBreakdownError:
            sample = float("inf")
        check("condest_sample", sample)

    s_dt = s.astype(dtype, copy=False)
    W = np.empty((m, n), dtype=dtype)  # becomes Q in place
    np.divide(A, s_dt[None, :], out=W)

    # -- pass 1: G1 = W^T W, R1 = chol(G1) ---------------------------------
    if mixed and dtype == np.float64:
        cast = None
        if workspace is not None:
            cast = workspace.array("gram32", (m, n), np.float32)
            np.copyto(cast, W)
        G1 = gram(cast if cast is not None else W, dtype=np.float32)
    else:
        mixed = False  # float32 input: the Gram is already single precision
        G1 = gram(W)
    try:
        R1 = _chol_r(G1, stage="gram")
    except CholeskyBreakdownError as exc:
        exc.condest = float("inf")
        raise
    d1 = np.diagonal(R1)
    condest = float(d1.max() / d1.min())
    if check is not None:
        check("condest", condest)

    X1 = tri_inv_upper(R1)  # float64 upper triangular

    fused = not mixed and condest <= FUSED_COND_LIMIT
    if fused:
        # -- fused pass 2: all small n x n algebra, one big trmm -----------
        # G2 = R1^{-T} (W^T W) R1^{-1} = Q1^T Q1 exactly, without the
        # second syrk over m rows.
        G1_64 = np.ascontiguousarray(G1, dtype=np.float64)
        G2 = X1.T @ G1_64 @ X1
        orth1 = float(np.linalg.norm(G2 - np.eye(n), "fro"))
        if check is not None:
            check("orth1", orth1)
        try:
            R2 = _chol_r(G2, stage="reorth")
        except CholeskyBreakdownError as exc:
            exc.condest = condest
            raise
        Xc = np.ascontiguousarray(X1 @ tri_inv_upper(R2), dtype=dtype)
        trmm_right_inplace(W, Xc)  # W <- W (R1^{-1} R2^{-1}) = Q
    else:
        # -- true two-pass: reorthogonalize through a second full Gram -----
        trmm_right_inplace(W, np.ascontiguousarray(X1, dtype=dtype))  # Q1
        G2 = gram(W, dtype=dtype)  # float64 reorthogonalization for mixed
        G2_64 = np.ascontiguousarray(G2, dtype=np.float64)
        orth1 = float(np.linalg.norm(G2_64 - np.eye(n), "fro"))
        if check is not None:
            check("orth1", orth1)
        try:
            R2 = _chol_r(G2_64, stage="reorth")
        except CholeskyBreakdownError as exc:
            exc.condest = condest
            raise
        trmm_right_inplace(W, np.ascontiguousarray(tri_inv_upper(R2), dtype=dtype))

    # A = W diag(s) and W = Q R2 R1, so R = (R2 R1) diag(s).
    R = np.ascontiguousarray((R2 @ R1) * s[None, :], dtype=dtype)
    return W, R, CholQRInfo(condest=condest, orth1=orth1, fused=fused, mixed=mixed)


def cholesky_qr(A: np.ndarray, *, nonfinite: str = "raise") -> tuple[np.ndarray, np.ndarray]:
    """QR via ``A^T A = R^T R``; ``Q = A R^{-1}`` (single pass).

    Communication-optimal (one pass over A) but squares the condition
    number — kept as the stability-story baseline.  Raises
    :class:`repro.core.triangular.SingularTriangularError` when the Gram
    matrix is not numerically positive definite.  Float32 input stays
    float32 (the Gram accumulates in the input precision, which is the
    point of the demo).
    """
    from repro.verify.guards import validate_matrix

    A = validate_matrix(A, where="cholesky_qr", nonfinite=nonfinite)
    m, n = A.shape
    if m < n:
        raise ValueError("cholesky_qr requires m >= n")
    G = gram(np.ascontiguousarray(A))
    L = cholesky(G)  # reference pivot-by-pivot factor: raises on breakdown
    R = np.ascontiguousarray(L.T, dtype=A.dtype)
    Q = np.array(A, dtype=A.dtype, order="C", copy=True)
    trsm_right_inplace(Q, R)  # Q = A R^{-1}, in place on the copy
    return Q, R


def cholesky_qr2(A: np.ndarray, *, nonfinite: str = "raise") -> tuple[np.ndarray, np.ndarray]:
    """CholeskyQR2: run Cholesky QR twice and merge the R factors."""
    Q1, R1 = cholesky_qr(A, nonfinite=nonfinite)
    Q, R2 = cholesky_qr(Q1, nonfinite=nonfinite)
    return Q, np.ascontiguousarray((R2 @ R1), dtype=Q.dtype)
