"""Blocked (BLAS3) Householder QR — the algorithm of Figure 1.

This is the classical "blocked Householder" algorithm used by LAPACK,
MAGMA and CULA (Section II-A of the paper): a BLAS2 panel factorization
(``geqr2``), formation of the triangular ``T`` factor (``larft``), and a
BLAS3 trailing-matrix update (``larfb``).  We implement it from scratch so
the library baselines in :mod:`repro.baselines` simulate exactly this
algorithm, and so its numerics can be compared against CAQR's.
"""

from __future__ import annotations

import numpy as np

from .dtypes import as_float_array, working_dtype
from .householder import extract_v, geqr2

__all__ = ["larft", "larfb", "geqrf", "ormqr", "orgqr", "blocked_qr"]


def larft(V: np.ndarray, tau: np.ndarray) -> np.ndarray:
    """Form the upper-triangular block reflector factor T (LAPACK ``slarft``).

    ``Q = I - V T V^T`` where ``V`` is the ``m x k`` unit-lower-trapezoidal
    matrix of Householder vectors ("forward", "columnwise" storage).
    The paper's Figure 1 calls this "a triangular matrix T formed from the
    inner products of the columns in the panel".
    """
    m, k = V.shape
    if len(tau) != k:
        raise ValueError("tau length must match number of reflectors")
    T = np.zeros((k, k), dtype=working_dtype(V))
    for i in range(k):
        if tau[i] == 0.0:
            continue
        T[i, i] = tau[i]
        if i > 0:
            # T[:i, i] = -tau_i * T[:i, :i] @ (V[:, :i]^T v_i)
            w = V[:, :i].T @ V[:, i]
            T[:i, i] = -tau[i] * (T[:i, :i] @ w)
    return T


def larfb(
    V: np.ndarray,
    T: np.ndarray,
    C: np.ndarray,
    transpose: bool = True,
) -> np.ndarray:
    """Apply a block reflector ``Q = I - V T V^T`` to C from the left, in place.

    With ``transpose=True`` applies ``Q^T = I - V T^T V^T``.  This is the
    BLAS3 trailing-matrix update of Figure 1: three matrix-matrix products.
    """
    W = V.T @ C  # k x n
    W = (T.T if transpose else T) @ W
    C -= V @ W
    return C


def geqrf(A: np.ndarray, nb: int = 32) -> tuple[np.ndarray, np.ndarray]:
    """Blocked Householder QR (LAPACK ``sgeqrf``).

    Returns packed ``(VR, tau)`` in the same format as
    :func:`repro.core.householder.geqr2`.  ``nb`` is the panel width; each
    panel is factored with BLAS2 ``geqr2`` and the trailing matrix updated
    with one BLAS3 ``larfb`` — exactly the structure whose panel phase the
    paper identifies as bandwidth-bound for tall-skinny matrices.
    """
    A = as_float_array(A, copy=True)
    m, n = A.shape
    k = min(m, n)
    if nb < 1:
        raise ValueError("panel width nb must be >= 1")
    tau = np.zeros(k, dtype=A.dtype)
    for j in range(0, k, nb):
        jb = min(nb, k - j)
        panel, ptau = geqr2(A[j:, j : j + jb])
        A[j:, j : j + jb] = panel
        tau[j : j + jb] = ptau
        if j + jb < n:
            V = extract_v(panel)
            T = larft(V, ptau)
            larfb(V, T, A[j:, j + jb :], transpose=True)
    return A, tau


def ormqr(
    VR: np.ndarray,
    tau: np.ndarray,
    C: np.ndarray,
    transpose: bool = False,
    nb: int = 32,
) -> np.ndarray:
    """Apply Q or Q^T from a ``geqrf`` factorization to C, in place (``sormqr``)."""
    m, n = VR.shape
    k = len(tau)
    if C.shape[0] != m:
        raise ValueError("row mismatch between VR and C")
    starts = list(range(0, k, nb))
    if not transpose:
        starts.reverse()
    for j in starts:
        jb = min(nb, k - j)
        V = extract_v(VR[j:, j : j + jb])
        T = larft(V, tau[j : j + jb])
        larfb(V, T, C[j:, :], transpose=transpose)
    return C


def orgqr(VR: np.ndarray, tau: np.ndarray, n_cols: int | None = None, nb: int = 32) -> np.ndarray:
    """Form the explicit thin Q from a ``geqrf`` factorization (``sorgqr``)."""
    m, n = VR.shape
    k = min(m, n)
    if n_cols is None:
        n_cols = k
    Q = np.zeros((m, n_cols), dtype=working_dtype(VR))
    np.fill_diagonal(Q, 1.0)
    return ormqr(VR, tau, Q, transpose=False, nb=nb)


def blocked_qr(
    A: np.ndarray, nb: int = 32, nonfinite: str = "raise"
) -> tuple[np.ndarray, np.ndarray]:
    """Convenience: return explicit thin ``(Q, R)`` via blocked Householder."""
    from repro.verify.guards import validate_matrix

    A = validate_matrix(A, where="blocked_qr", nonfinite=nonfinite)
    m, n = A.shape
    k = min(m, n)
    VR, tau = geqrf(A, nb=nb)
    R = np.triu(VR[:k, :])
    Q = orgqr(VR, tau, n_cols=k, nb=nb)
    return Q, R
