"""Communication-Avoiding QR (CAQR) for general matrices — Section II-C.

The matrix is divided into a grid of small blocks.  Each column panel is
factored with TSQR, and the trailing matrix is updated by applying the
panel's implicit Q^T: the level-0 factors horizontally across whole block
rows (the ``apply_qt_h`` kernel) and the tree factors to the distributed
row pieces they touch (the ``apply_qt_tree`` kernel).  After each panel
the grid is "redrawn lower by a number of rows equal to the panel width"
(Section II-C), reflecting that the trailing matrix shrinks in both
dimensions.

This module is the numerics; :mod:`repro.caqr_gpu` drives the same
algorithm through the GPU simulator with per-kernel launch costs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs import tracer as _obs
from repro.runtime.policy import UNSET, ExecutionPolicy, resolve_policy
from repro.verify.guards import validate_matrix

from .dtypes import as_float_array, working_dtype
from .tsqr import TSQRFactors, _tsqr_impl

__all__ = ["PanelFactor", "CAQRFactors", "caqr", "caqr_qr"]


@dataclass
class PanelFactor:
    """TSQR factors of one column panel, with its global position."""

    col_start: int
    col_stop: int
    row_start: int
    factors: TSQRFactors


@dataclass
class CAQRFactors:
    """Implicit Q and explicit R of a CAQR factorization."""

    m: int
    n: int
    panel_width: int
    block_rows: int
    tree_shape: str
    panels: list[PanelFactor]
    R: np.ndarray  # min(m, n) x n upper trapezoidal
    batched: bool = True

    def apply_qt(self, B: np.ndarray) -> np.ndarray:
        """Compute ``Q^T B`` in place (B must have ``m`` rows)."""
        B = as_float_array(B)
        if B.shape[0] != self.m:
            raise ValueError(f"B must have {self.m} rows, got {B.shape[0]}")
        for p in self.panels:
            p.factors.apply_qt(B[p.row_start :, :])
        return B

    def apply_q(self, B: np.ndarray) -> np.ndarray:
        """Compute ``Q B`` in place (B must have ``m`` rows)."""
        B = as_float_array(B)
        if B.shape[0] != self.m:
            raise ValueError(f"B must have {self.m} rows, got {B.shape[0]}")
        for p in reversed(self.panels):
            p.factors.apply_q(B[p.row_start :, :])
        return B

    def form_q(self) -> np.ndarray:
        """Form the explicit thin ``m x min(m, n)`` orthonormal Q (SORGQR)."""
        k = min(self.m, self.n)
        Q = np.zeros((self.m, k), dtype=working_dtype(self.R))
        np.fill_diagonal(Q, 1.0)
        return self.apply_q(Q)


def _caqr_serial(A: np.ndarray, policy: ExecutionPolicy) -> CAQRFactors:
    """The serial panel loop on an *already validated* matrix.

    Shared by the public :func:`caqr` shim and :class:`repro.runtime.plan.QRPlan`
    (which pre-validates), so both drive the identical arithmetic.  Each
    panel goes straight to :func:`~repro.core.tsqr._tsqr_impl`: the input
    was validated exactly once at the public entry point, so per-panel
    re-scans never happen.
    """
    m, n = A.shape
    k = min(m, n)
    with _obs.span("setup", cat="host"):
        W = A.copy()
    panels: list[PanelFactor] = []
    for col_start in range(0, k, policy.panel_width):
        pw = min(policy.panel_width, k - col_start)
        row_start = col_start  # grid redrawn lower by the panel width
        panel_view = W[row_start:, col_start : col_start + pw]
        with _obs.span("factor", cat="factor", panel=col_start // policy.panel_width, rows=m - row_start):
            f = _tsqr_impl(
                panel_view,
                block_rows=policy.block_rows,
                tree_shape=policy.tree_shape,
                structured=policy.uses_structured,
                batched=policy.uses_batched,
            )
        # The trailing matrix update: apply Q^T of the panel across the
        # remaining columns (apply_qt_h + apply_qt_tree in the GPU code).
        trailing = W[row_start:, col_start + pw :]
        if trailing.size:
            with _obs.span("update", cat="update", panel=col_start // policy.panel_width, cols=n - col_start - pw):
                f.apply_qt(trailing)
        # Record the panel's R back into the working matrix so the final
        # R can be read off the top k rows.
        rh = f.R.shape[0]
        W[row_start : row_start + rh, col_start : col_start + pw] = f.R
        W[row_start + rh :, col_start : col_start + pw] = 0.0
        panels.append(
            PanelFactor(col_start=col_start, col_stop=col_start + pw, row_start=row_start, factors=f)
        )
    with _obs.span("assemble_r", cat="host"):
        R = np.triu(W[:k, :])
    return CAQRFactors(
        m=m,
        n=n,
        panel_width=policy.panel_width,
        block_rows=policy.block_rows,
        tree_shape=policy.tree_shape,
        panels=panels,
        R=R,
        batched=policy.uses_batched,
    )


def caqr(
    A: np.ndarray,
    panel_width: int = UNSET,
    block_rows: int = UNSET,
    tree_shape: str = UNSET,
    structured: bool = UNSET,
    batched: bool = UNSET,
    lookahead: bool = UNSET,
    workers: int | None = UNSET,
    nonfinite: str = UNSET,
    *,
    policy: ExecutionPolicy | None = None,
) -> CAQRFactors:
    """Factor a matrix with CAQR (Figure 3 / the host pseudocode of Figure 4).

    Prefer ``policy=`` (an :class:`~repro.runtime.policy.ExecutionPolicy`
    naming the execution path, geometry, worker count and guard
    behaviour); reusable shape plans come from
    :func:`repro.runtime.plan.plan_qr`.  The loose kwargs remain as
    deprecation shims mapped by
    :func:`~repro.runtime.policy.resolve_policy`:

    Args:
        A: ``m x n`` matrix.
        panel_width: width of each column panel (the paper's reference GPU
            configuration uses 16, matching the 64x16 block).
        block_rows: height of the level-0 row blocks within each panel.
        tree_shape: TSQR reduction-tree shape (paper: quad-tree on the GPU).
        structured: (deprecated) maps to ``path="structured"``.
        batched: (deprecated) ``False`` maps to the seed reference path.
        lookahead: (deprecated) maps to ``path="lookahead"`` — the
            dependency-task-graph executor
            (:func:`repro.graph.executor.caqr_lookahead`); returns a
            duck-type-compatible
            :class:`~repro.graph.executor.LookaheadCAQRFactors`.
        workers: (deprecated) column tiles per trailing update /
            thread-pool width; > 1 implies the look-ahead path.
        nonfinite: (deprecated) non-finite input policy (``"raise"``
            rejects NaN/Inf; ``"propagate"`` lets them flow through).
        policy: the execution policy; mutually exclusive with the legacy
            kwargs above.

    Returns:
        :class:`CAQRFactors` with the implicit Q (per-panel TSQR factors)
        and the explicit upper-trapezoidal R.
    """
    policy = resolve_policy(
        "caqr",
        policy,
        batched=batched,
        structured=structured,
        lookahead=lookahead,
        workers=workers,
        nonfinite=nonfinite,
        panel_width=panel_width,
        block_rows=block_rows,
        tree_shape=tree_shape,
    )
    if policy.path == "lookahead":
        from repro.graph.executor import caqr_lookahead

        return caqr_lookahead(A, policy=policy)
    if policy.uses_cholqr:
        from repro.runtime.cholqr import run_cholqr

        with _obs.maybe_trace(policy.trace):
            A = validate_matrix(A, where="caqr", nonfinite=policy.nonfinite)
            with _obs.span(
                "caqr", cat="entry", m=A.shape[0], n=A.shape[1], path=policy.path
            ):
                return run_cholqr(A, policy)
    if policy.path == "sharded":
        from repro.distributed.sharded import run_sharded

        with _obs.maybe_trace(policy.trace):
            A = validate_matrix(A, where="caqr", nonfinite=policy.nonfinite)
            with _obs.span(
                "caqr", cat="entry", m=A.shape[0], n=A.shape[1], path=policy.path
            ):
                return run_sharded(A, policy)
    if policy.path == "streaming":
        from repro.streaming.qr import run_streaming_matrix

        with _obs.maybe_trace(policy.trace):
            A = validate_matrix(A, where="caqr", nonfinite=policy.nonfinite)
            with _obs.span(
                "caqr", cat="entry", m=A.shape[0], n=A.shape[1], path=policy.path
            ):
                return run_streaming_matrix(A, policy)
    with _obs.maybe_trace(policy.trace):
        A = validate_matrix(A, where="caqr", nonfinite=policy.nonfinite)
        with _obs.span("caqr", cat="entry", m=A.shape[0], n=A.shape[1], path=policy.path):
            return _caqr_serial(A, policy)


def caqr_qr(
    A: np.ndarray,
    panel_width: int = UNSET,
    block_rows: int = UNSET,
    tree_shape: str = UNSET,
    structured: bool = UNSET,
    batched: bool = UNSET,
    lookahead: bool = UNSET,
    workers: int | None = UNSET,
    nonfinite: str = UNSET,
    *,
    policy: ExecutionPolicy | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Convenience: explicit thin ``(Q, R)`` via CAQR."""
    f = caqr(
        A,
        panel_width=panel_width,
        block_rows=block_rows,
        tree_shape=tree_shape,
        structured=structured,
        batched=batched,
        lookahead=lookahead,
        workers=workers,
        nonfinite=nonfinite,
        policy=policy,
    )
    return f.form_q(), f.R
