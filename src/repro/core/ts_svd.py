"""Tall-skinny SVD via QR — Section VI-B.

The well-known technique the paper uses to reduce the bulk of an SVD to a
QR decomposition::

    A = Q R
      = Q (U Sigma V^T)       # small SVD of the n x n R
      = (Q U) Sigma V^T
      = U' Sigma V^T

so the left singular vectors are ``Q @ U``.  The QR step can be any of the
engines in this library (TSQR, CAQR, blocked Householder, Cholesky QR),
which is exactly the knob Table II turns in the Robust PCA application.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .caqr import caqr_qr
from .jacobi_svd import jacobi_svd
from .tsqr import tsqr_qr

__all__ = ["tall_skinny_svd", "QR_ENGINES"]

QRFunc = Callable[[np.ndarray], tuple[np.ndarray, np.ndarray]]

#: Named QR engines usable as the first step of the tall-skinny SVD.
QR_ENGINES: dict[str, QRFunc] = {
    "tsqr": tsqr_qr,
    "caqr": caqr_qr,
}


def tall_skinny_svd(
    A: np.ndarray,
    qr: str | QRFunc = "tsqr",
    svd_small: Callable[[np.ndarray], tuple[np.ndarray, np.ndarray, np.ndarray]] = jacobi_svd,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Thin SVD ``A = U diag(s) V^T`` of a tall-skinny matrix via QR.

    Args:
        A: ``m x n`` with ``m >= n``.
        qr: a named engine from :data:`QR_ENGINES` or any callable
            returning an explicit thin ``(Q, R)``.
        svd_small: SVD routine for the small ``n x n`` R (default: the
            from-scratch one-sided Jacobi — the "small SVD on the CPU").

    Returns:
        ``(U, s, Vt)`` with ``U`` of shape ``m x n``.
    """
    A = np.asarray(A, dtype=float)
    m, n = A.shape
    if m < n:
        raise ValueError("tall_skinny_svd requires m >= n")
    qr_fn = QR_ENGINES[qr] if isinstance(qr, str) else qr
    Q, R = qr_fn(A)
    U_small, s, Vt = svd_small(R)
    U = Q @ U_small  # the Q * U product of Section VI-B
    return U, s, Vt
