"""Householder reflector primitives, built from scratch on NumPy.

These routines follow the LAPACK conventions (``slarfg``/``sgeqr2``/
``sorg2r``/``sorm2r``) so that the packed factor format is interchangeable
with what a GPU kernel would store in place of the input block: the upper
triangle holds R, the strict lower triangle holds the Householder vectors
with an implicit unit diagonal, and a separate ``tau`` array holds the
scalar reflector coefficients.

The paper's ``factor`` kernel (Section IV-D.1) is exactly ``geqr2`` applied
to one small block in fast memory; ``apply_qt_h`` is ``orm2r`` applied
blockwise.  Everything here is the BLAS2 (matrix-vector) formulation; the
blocked BLAS3 formulation lives in :mod:`repro.core.blocked`.
"""

from __future__ import annotations

import numpy as np

from .dtypes import as_float_array, working_dtype

__all__ = [
    "norm_safe_range",
    "house",
    "apply_reflector",
    "geqr2",
    "extract_r",
    "extract_v",
    "org2r",
    "orm2r",
    "qr_flops",
    "geqr2_flops",
]


def norm_safe_range(dtype, tail_len: int) -> tuple[float, float]:
    """Magnitude window within which ``sum(x*x)`` is safe in ``dtype``.

    Returns ``(big, tiny)``: entries above ``big`` risk overflowing the
    squared-norm accumulation (including the sum over ``tail_len``
    terms), entries below ``tiny`` risk underflowing it to zero — which
    the unscaled reflector path would misread as an already-reduced
    vector.  Outside the window, callers must rescale before squaring
    (the ``slarfg`` idiom).
    """
    fin = np.finfo(dtype)
    big = float(np.sqrt(fin.max / max(tail_len, 1))) / 4.0
    tiny = float(np.sqrt(fin.tiny)) * 4.0
    return big, tiny


def house(x: np.ndarray) -> tuple[np.ndarray, float, float]:
    """Compute a Householder reflector for a vector.

    Returns ``(v, tau, beta)`` with ``v[0] == 1`` such that
    ``(I - tau * v v^T) x = beta * e_1`` and ``H = I - tau v v^T`` is
    orthogonal.  Follows ``slarfg``: ``beta = -sign(x[0]) * ||x||`` so the
    transformation is numerically stable (no cancellation in ``x[0] - beta``),
    and vectors whose squared norm would leave the working precision's
    range are rescaled before squaring — float32 data at 1e30 (squares
    1e60, far past float32 max) still yields a finite reflector, and
    tiny vectors no longer collapse to a spurious identity reflector.

    For a zero (or length-1 already-reduced) vector, ``tau = 0`` and the
    reflector is the identity.
    """
    x = as_float_array(x)
    if x.ndim != 1 or x.size == 0:
        raise ValueError("house() expects a non-empty 1-D vector")
    v = x.copy()
    alpha = float(v[0])
    if v.size == 1:
        return np.ones(1, dtype=v.dtype), 0.0, float(alpha)
    tail = v[1:]
    amax = float(np.max(np.abs(tail)))
    if amax == 0.0:
        # Already of the form alpha*e_1: identity reflector.
        v[0] = 1.0
        return v, 0.0, float(alpha)
    big, tiny = norm_safe_range(v.dtype, tail.size)
    if max(abs(alpha), amax) > big or amax < tiny:
        s = max(abs(alpha), amax)
        w = tail / v.dtype.type(s)
        norm_x = s * float(np.sqrt((alpha / s) ** 2 + np.dot(w, w)))
    else:
        sigma = float(np.dot(tail, tail))
        norm_x = float(np.sqrt(alpha * alpha + sigma))
    beta = -np.copysign(norm_x, alpha)
    v0 = alpha - beta
    v[1:] /= v0
    v[0] = 1.0
    tau = (beta - alpha) / beta
    return v, float(tau), float(beta)


def apply_reflector(v: np.ndarray, tau: float, C: np.ndarray) -> np.ndarray:
    """Apply ``H = I - tau v v^T`` from the left, in place: ``C <- H C``.

    This is the matvec + rank-1 update pair that Section IV-E identifies as
    the core computation of every kernel (Figure 5): ``w = C^T v`` followed
    by ``C -= tau * v w^T``.
    """
    if tau == 0.0:
        return C
    w = C.T @ v  # matrix-vector product, Figure 5(a)
    C -= tau * np.outer(v, w)  # rank-1 update, Figure 5(b)
    return C


def geqr2(A: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Unblocked Householder QR of a small block (LAPACK ``sgeqr2``).

    Returns ``(VR, tau)`` where ``VR`` is ``A`` overwritten with R in the
    upper triangle and the Householder vectors below the diagonal (unit
    diagonal implicit), and ``tau`` has length ``min(m, n)``.

    This is the computation performed in fast memory by the paper's
    ``factor`` kernel.
    """
    A = as_float_array(A, copy=True)
    m, n = A.shape
    k = min(m, n)
    tau = np.zeros(k, dtype=A.dtype)
    for j in range(k):
        v, t, beta = house(A[j:, j])
        tau[j] = t
        if j + 1 < n:
            apply_reflector(v, t, A[j:, j + 1 :])
        A[j, j] = beta
        A[j + 1 :, j] = v[1:]
    return A, tau


def extract_r(VR: np.ndarray, square: bool = True) -> np.ndarray:
    """Extract the R factor from the packed ``geqr2`` output.

    With ``square=True`` returns the leading ``min(m, n) x n`` upper
    trapezoid (the part TSQR passes up the reduction tree); otherwise the
    full ``m x n`` upper triangle.
    """
    m, n = VR.shape
    R = np.triu(VR)
    if square:
        return R[: min(m, n), :]
    return R


def extract_v(VR: np.ndarray) -> np.ndarray:
    """Extract the Householder vectors as a unit-lower-trapezoidal matrix."""
    m, n = VR.shape
    k = min(m, n)
    V = np.tril(VR[:, :k], -1)
    np.fill_diagonal(V, 1.0)
    return V


def orm2r(
    VR: np.ndarray,
    tau: np.ndarray,
    C: np.ndarray,
    transpose: bool = False,
) -> np.ndarray:
    """Apply Q (or Q^T) from a packed ``geqr2`` factorization to C, in place.

    ``Q = H_0 H_1 ... H_{k-1}``; applying ``Q^T`` walks the reflectors
    forward, applying ``Q`` walks them backward (LAPACK ``sorm2r``, side
    'L').  ``C`` must have the same number of rows as ``VR``.
    """
    m, n = VR.shape
    if C.shape[0] != m:
        raise ValueError(f"row mismatch: VR has {m} rows, C has {C.shape[0]}")
    k = len(tau)
    order = range(k) if transpose else range(k - 1, -1, -1)
    for j in order:
        v = np.empty(m - j, dtype=VR.dtype)
        v[0] = 1.0
        v[1:] = VR[j + 1 :, j]
        apply_reflector(v, tau[j], C[j:, :])
    return C


def org2r(VR: np.ndarray, tau: np.ndarray, n_cols: int | None = None) -> np.ndarray:
    """Form the explicit (thin) Q factor from packed form (LAPACK ``sorg2r``).

    Returns the ``m x n_cols`` orthonormal matrix (default ``n_cols =
    min(m, n)``) — the SORGQR-equivalent the paper notes is "just as
    efficient as factoring the matrix".
    """
    m, n = VR.shape
    k = min(m, n)
    if n_cols is None:
        n_cols = k
    Q = np.zeros((m, n_cols), dtype=working_dtype(VR))
    np.fill_diagonal(Q, 1.0)
    return orm2r(VR, tau, Q, transpose=False)


def qr_flops(m: int, n: int) -> float:
    """Standard flop count of a Householder QR factorization (SGEQRF).

    ``2mn^2 - 2n^3/3`` for ``m >= n`` — the count used by the paper (and by
    LAPACK) to convert runtimes into GFLOPS regardless of the extra
    arithmetic an algorithm like CAQR performs.
    """
    m, n = float(m), float(n)
    if m >= n:
        return 2.0 * m * n * n - 2.0 * n**3 / 3.0
    # Wide case: factor the leading m x m part and update the rest.
    return 2.0 * n * m * m - 2.0 * m**3 / 3.0


def geqr2_flops(m: int, n: int) -> float:
    """Flops actually performed by unblocked QR of an ``m x n`` block.

    Identical leading term to :func:`qr_flops`; kept separate so kernel
    cost models can distinguish "useful" flops from the SGEQRF accounting
    convention.
    """
    return qr_flops(m, n)
