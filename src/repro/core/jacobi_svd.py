"""One-sided Jacobi SVD for small matrices, built from scratch.

The paper computes the SVD of the small ``n x n`` R factor on the CPU
(Section VI-B: "we find the SVD of R, which is cheap because R is an
n x n matrix").  This module provides that substrate: a one-sided Jacobi
SVD, chosen because it is simple, accurate to high relative precision,
and needs no bidiagonalization machinery.

``A V = U diag(s)``: sweeps of plane rotations orthogonalize the columns
of a working copy of A; the column norms converge to the singular values.
"""

from __future__ import annotations

import numpy as np

from .dtypes import as_float_array, working_dtype

__all__ = ["jacobi_svd", "svd_via_jacobi"]


def jacobi_svd(
    A: np.ndarray,
    tol: float = 1e-14,
    max_sweeps: int = 60,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One-sided Jacobi SVD of an ``m x n`` matrix with ``m >= n``.

    Returns ``(U, s, Vt)`` with ``U`` of shape ``m x n`` (thin), singular
    values sorted descending, and the sign convention that each singular
    value is non-negative.

    Args:
        A: input matrix, ``m >= n``.
        tol: convergence threshold on the normalized off-diagonal inner
            products ``|a_i . a_j| / (||a_i|| ||a_j||)``.
        max_sweeps: hard cap on the number of full column-pair sweeps.

    Raises:
        RuntimeError: if the sweep limit is reached without converging.
    """
    A = as_float_array(A)
    m, n = A.shape
    if m < n:
        raise ValueError("jacobi_svd requires m >= n (pass A.T and swap U/V)")
    if A.size and not np.isfinite(A).all():
        raise ValueError("jacobi_svd requires finite input (NaN/Inf found)")
    dt = working_dtype(A)
    if n == 0:
        return np.zeros((m, 0), dtype=dt), np.zeros(0, dtype=dt), np.zeros((0, 0), dtype=dt)
    U = np.array(A, dtype=dt, copy=True)
    V = np.eye(n, dtype=dt)
    for _ in range(max_sweeps):
        off = 0.0
        for p in range(n - 1):
            for q in range(p + 1, n):
                alpha = float(U[:, p] @ U[:, p])
                beta = float(U[:, q] @ U[:, q])
                gamma = float(U[:, p] @ U[:, q])
                if alpha == 0.0 or beta == 0.0:
                    continue
                # sqrt separately: alpha * beta can underflow to zero for
                # denormal-scale columns even when both are nonzero.
                denom = float(np.sqrt(alpha)) * float(np.sqrt(beta))
                if denom == 0.0:
                    continue
                off = max(off, abs(gamma) / denom)
                if abs(gamma) <= tol * denom:
                    continue
                # Classic two-sided-symmetric rotation on the Gram 2x2.
                zeta = (beta - alpha) / (2.0 * gamma)
                if abs(zeta) > 1e150:
                    # zeta^2 would overflow; use the asymptotic tangent
                    # (otherwise the rotation degenerates to a no-op and
                    # extreme-scale columns never orthogonalize).
                    t = 0.5 / zeta
                elif zeta == 0.0:
                    t = 1.0
                else:
                    t = np.sign(zeta) / (abs(zeta) + np.sqrt(1.0 + zeta * zeta))
                c = 1.0 / np.sqrt(1.0 + t * t)
                s = c * t
                up = U[:, p].copy()
                U[:, p] = c * up - s * U[:, q]
                U[:, q] = s * up + c * U[:, q]
                vp = V[:, p].copy()
                V[:, p] = c * vp - s * V[:, q]
                V[:, q] = s * vp + c * V[:, q]
        if off <= tol:
            break
    else:
        raise RuntimeError(f"Jacobi SVD did not converge in {max_sweeps} sweeps")
    sing = np.linalg.norm(U, axis=0)
    order = np.argsort(sing)[::-1]
    sing = sing[order]
    U = U[:, order]
    V = V[:, order]
    nonzero = sing > 0
    U[:, nonzero] /= sing[nonzero]
    # Columns with zero singular value: leave as zeros (rank-deficient input).
    U[:, ~nonzero] = 0.0
    return U, sing, V.T


def svd_via_jacobi(A: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """SVD of any small matrix, transposing internally when ``m < n``."""
    A = as_float_array(A)
    m, n = A.shape
    if m >= n:
        return jacobi_svd(A)
    U, s, Vt = jacobi_svd(A.T)
    return Vt.T, s, U.T
