"""Numerical-quality metrics for QR factorizations.

The paper motivates Householder-based CAQR over Cholesky QR and
Gram-Schmidt on stability grounds (Section II).  These metrics make those
comparisons quantitative: orthogonality of Q, backward error of the
factorization, and triangularity of R.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "orthogonality_error",
    "factorization_error",
    "triangularity_error",
    "sign_canonical",
    "is_factorization_accurate",
]


def orthogonality_error(Q: np.ndarray) -> float:
    """``||Q^T Q - I||_F`` — the loss-of-orthogonality measure."""
    Q = np.asarray(Q, dtype=float)
    k = Q.shape[1]
    return float(np.linalg.norm(Q.T @ Q - np.eye(k)))


def factorization_error(A: np.ndarray, Q: np.ndarray, R: np.ndarray) -> float:
    """Relative backward error ``||A - Q R||_F / ||A||_F`` (0 for A == 0)."""
    A = np.asarray(A, dtype=float)
    denom = np.linalg.norm(A)
    if denom == 0.0:
        return float(np.linalg.norm(Q @ R))
    return float(np.linalg.norm(A - Q @ R) / denom)


def triangularity_error(R: np.ndarray) -> float:
    """Frobenius norm of the strictly-lower-triangular part of R."""
    R = np.asarray(R, dtype=float)
    return float(np.linalg.norm(np.tril(R, -1)))


def sign_canonical(Q: np.ndarray, R: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Flip signs so R has a non-negative diagonal.

    QR is unique only up to the signs of R's diagonal; different algorithms
    (and LAPACK vs TSQR trees) legitimately disagree.  Canonicalizing lets
    tests compare R factors directly.
    """
    R = np.array(R, dtype=float, copy=True)
    Q = np.array(Q, dtype=float, copy=True)
    k = min(R.shape)
    signs = np.sign(np.diag(R)[:k])
    signs[signs == 0] = 1.0
    R[:k, :] *= signs[:, None]
    Q[:, :k] *= signs[None, :]
    return Q, R


def is_factorization_accurate(
    A: np.ndarray,
    Q: np.ndarray,
    R: np.ndarray,
    factor: float = 100.0,
) -> bool:
    """Check QR quality against the Householder backward-error bound.

    Householder-based QR guarantees errors of order ``c(m, n) * eps``; we
    use a generous ``factor * eps * sqrt(m * n)`` threshold suitable for
    random test matrices.
    """
    A = np.asarray(A, dtype=float)
    m, n = A.shape
    tol = factor * np.finfo(float).eps * max(np.sqrt(m * n), 1.0)
    return (
        orthogonality_error(Q) <= tol * max(1.0, np.sqrt(n))
        and factorization_error(A, Q, R) <= tol
        and triangularity_error(R) == 0.0
    )
