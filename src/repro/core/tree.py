"""Reduction-tree schedules for TSQR (Section II-B / IV-C).

TSQR eliminates the per-block R factors with a reduction tree whose shape
is an architecture choice: the paper uses a **quad-tree** on the GPU
(because a 64x16 block holds 64/16 = 4 stacked 16x16 R triangles), while
prior multicore work used a **binomial** tree and sequential (cache
blocked) TSQR corresponds to a **flat** tree.

A schedule is a list of levels; each level is a list of *groups*; each
group is a tuple of surviving block indices whose R factors are stacked
and factored together.  The first index of a group survives to the next
level.  The schedule is pure bookkeeping — the same schedules drive both
the NumPy execution path and the GPU simulator's launch-cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Sequence

__all__ = ["TreeSchedule", "build_tree", "batch_level", "TREE_SHAPES"]

TREE_SHAPES = ("binary", "quad", "binomial", "flat")


@dataclass(frozen=True)
class TreeSchedule:
    """A reduction-tree elimination schedule over ``n_blocks`` row blocks.

    Attributes:
        n_blocks: number of level-0 row blocks in the panel.
        shape: one of :data:`TREE_SHAPES` (or ``"arity:k"``).
        levels: ``levels[l]`` is the list of groups eliminated at level l.
            Every group has >= 2 members except that a lone trailing block
            may ride along to the next level ungrouped.
    """

    n_blocks: int
    shape: str
    levels: tuple[tuple[tuple[int, ...], ...], ...] = field(default=())

    @property
    def n_levels(self) -> int:
        return len(self.levels)

    @property
    def n_groups(self) -> int:
        """Total number of stacked-R factorizations performed by the tree."""
        return sum(len(level) for level in self.levels)

    def level_arities(self) -> tuple[int, ...]:
        """Maximum group arity at each level.

        This is the arity the launch models cost a level at: on a uniform
        grid every group in a level has the same size, and a ragged tail
        group is padded to the level's stacking height by the kernel.
        Shared by the serial launch enumerator and the dependency-graph
        builder so both describe identical kernels.
        """
        return tuple(max(len(g) for g in level) for level in self.levels)

    def survivors(self) -> list[int]:
        """Indices alive after the last level (length 1 when n_blocks >= 1)."""
        alive = list(range(self.n_blocks))
        for level in self.levels:
            eliminated = {i for group in level for i in group[1:]}
            alive = [i for i in alive if i not in eliminated]
        return alive

    def validate(self) -> None:
        """Check the schedule eliminates every block exactly once."""
        alive = list(range(self.n_blocks))
        for level in self.levels:
            alive_set = set(alive)
            seen: set[int] = set()
            for group in level:
                if len(group) < 2:
                    raise ValueError(f"group {group} has fewer than 2 members")
                for i in group:
                    if i not in alive_set:
                        raise ValueError(f"block {i} not alive at this level")
                    if i in seen:
                        raise ValueError(f"block {i} appears in two groups")
                    seen.add(i)
            eliminated = {i for group in level for i in group[1:]}
            alive = [i for i in alive if i not in eliminated]
        if len(alive) != min(1, self.n_blocks):
            raise ValueError(f"schedule leaves {len(alive)} survivors: {alive}")


def _chunked_levels(n_blocks: int, arity: int) -> list[tuple[tuple[int, ...], ...]]:
    """Group consecutive survivors in chunks of ``arity`` until one remains."""
    levels: list[tuple[tuple[int, ...], ...]] = []
    alive = list(range(n_blocks))
    while len(alive) > 1:
        groups = []
        nxt = []
        for start in range(0, len(alive), arity):
            chunk = tuple(alive[start : start + arity])
            if len(chunk) == 1:
                nxt.append(chunk[0])  # lone block rides along
            else:
                groups.append(chunk)
                nxt.append(chunk[0])
        if not groups:  # only possible if arity < 2
            raise ValueError("arity must be >= 2")
        levels.append(tuple(groups))
        alive = nxt
    return levels


def _binomial_levels(n_blocks: int) -> list[tuple[tuple[int, ...], ...]]:
    """Stride-doubling pairwise elimination: (i, i+s) at stride s = 1,2,4,..."""
    levels: list[tuple[tuple[int, ...], ...]] = []
    stride = 1
    while stride < n_blocks:
        groups = []
        for i in range(0, n_blocks, 2 * stride):
            j = i + stride
            if j < n_blocks:
                groups.append((i, j))
        levels.append(tuple(groups))
        stride *= 2
    return levels


def batch_level(
    level: Sequence[tuple[int, ...]],
    key: Callable[[tuple[int, ...]], Hashable] = len,
) -> dict[Hashable, list[int]]:
    """Partition one level's groups into same-shape batches.

    Maps ``key(group)`` (default: the group's arity) to the positions of
    the groups sharing it, preserving first-appearance and within-batch
    order.  Groups in one batch stack into a single ``(nodes, h, w)``
    array, which is what lets the batched execution path factor and apply
    an entire tree level with one kernel call per batch — on a uniform
    grid every level collapses to exactly one batch.
    """
    batches: dict[Hashable, list[int]] = {}
    for pos, group in enumerate(level):
        batches.setdefault(key(group), []).append(pos)
    return batches


def build_tree(n_blocks: int, shape: str = "quad") -> TreeSchedule:
    """Build a :class:`TreeSchedule` of the requested shape.

    ``shape`` is ``"binary"`` (arity 2), ``"quad"`` (arity 4, the paper's
    GPU choice), ``"binomial"`` (stride-doubling pairs, the multicore
    choice), ``"flat"`` (single group per level containing everything —
    sequential TSQR), or ``"arity:k"`` for any k >= 2.
    """
    if n_blocks < 0:
        raise ValueError("n_blocks must be non-negative")
    if n_blocks <= 1:
        return TreeSchedule(n_blocks=n_blocks, shape=shape, levels=())
    if shape == "binary":
        levels = _chunked_levels(n_blocks, 2)
    elif shape == "quad":
        levels = _chunked_levels(n_blocks, 4)
    elif shape == "binomial":
        levels = _binomial_levels(n_blocks)
    elif shape == "flat":
        levels = [((tuple(range(n_blocks)),))]
    elif shape.startswith("arity:"):
        levels = _chunked_levels(n_blocks, int(shape.split(":", 1)[1]))
    else:
        raise ValueError(f"unknown tree shape {shape!r}; choose from {TREE_SHAPES}")
    sched = TreeSchedule(n_blocks=n_blocks, shape=shape, levels=tuple(levels))
    sched.validate()
    return sched
