"""Classical and modified Gram-Schmidt orthogonalization.

Background algorithms from Section II, included for the stability
comparison against Householder-based TSQR/CAQR.  Classical Gram-Schmidt
(CGS) loses orthogonality proportionally to ``cond(A)^2``, modified
Gram-Schmidt (MGS) proportionally to ``cond(A)``, and CGS with
reorthogonalization (CGS2, "twice is enough") is stable in practice.
"""

from __future__ import annotations

import numpy as np

__all__ = ["classical_gram_schmidt", "modified_gram_schmidt", "cgs2"]


class RankDeficiencyError(ValueError):
    """Raised when a column is (numerically) linearly dependent."""


def _check_norm(nrm: float, orig: float, j: int, rtol: float = 1e-12) -> None:
    if nrm <= rtol * orig or not np.isfinite(nrm):
        raise RankDeficiencyError(f"column {j} is numerically dependent")


def classical_gram_schmidt(A: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """CGS: project each column against the *original* basis at once."""
    A = np.asarray(A, dtype=float)
    m, n = A.shape
    Q = np.zeros((m, n))
    R = np.zeros((n, n))
    for j in range(n):
        v = A[:, j].copy()
        orig = float(np.linalg.norm(v))
        if j > 0:
            R[:j, j] = Q[:, :j].T @ A[:, j]
            v -= Q[:, :j] @ R[:j, j]
        nrm = float(np.linalg.norm(v))
        _check_norm(nrm, orig, j)
        R[j, j] = nrm
        Q[:, j] = v / nrm
    return Q, R


def modified_gram_schmidt(A: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """MGS: project against each basis vector sequentially (more stable)."""
    A = np.asarray(A, dtype=float)
    m, n = A.shape
    Q = np.zeros((m, n))
    R = np.zeros((n, n))
    V = A.astype(float, copy=True)
    orig_norms = np.linalg.norm(A, axis=0)
    for j in range(n):
        nrm = float(np.linalg.norm(V[:, j]))
        _check_norm(nrm, float(orig_norms[j]), j)
        R[j, j] = nrm
        Q[:, j] = V[:, j] / nrm
        if j + 1 < n:
            R[j, j + 1 :] = Q[:, j] @ V[:, j + 1 :]
            V[:, j + 1 :] -= np.outer(Q[:, j], R[j, j + 1 :])
    return Q, R


def cgs2(A: np.ndarray, *, nonfinite: str = "raise") -> tuple[np.ndarray, np.ndarray]:
    """CGS with one full reorthogonalization pass per column.

    Guard-validated like every production entry point (complex rejected,
    non-finite policy honored, float32 preserved): the fuzz grid runs it
    as a reference algorithm against the CholeskyQR2 paths.
    """
    from repro.verify.guards import validate_matrix

    A = validate_matrix(A, where="cgs2", nonfinite=nonfinite)
    m, n = A.shape
    Q = np.zeros((m, n), dtype=A.dtype)
    R = np.zeros((n, n), dtype=A.dtype)
    # Dependence threshold in the working precision, not float64's.
    rtol = float(np.finfo(A.dtype).eps) * 1e4
    for j in range(n):
        v = A[:, j].astype(A.dtype, copy=True)
        orig = float(np.linalg.norm(v))
        for _ in range(2):
            if j > 0:
                c = Q[:, :j].T @ v
                R[:j, j] += c
                v -= Q[:, :j] @ c
        nrm = float(np.linalg.norm(v))
        _check_norm(nrm, orig, j, rtol=rtol)
        R[j, j] = nrm
        Q[:, j] = v / nrm
    return Q, R
