"""Givens-rotation QR — the other stable QR approach of Section II.

Each subdiagonal entry is annihilated by a 2x2 plane rotation.  Givens QR
is the basis of the structured eliminations TSQR *could* exploit when
factoring stacked triangles; we provide both a dense column sweep and a
structured two-triangle elimination used in tests to cross-check the
dense ``factor_tree`` math.
"""

from __future__ import annotations

import numpy as np

__all__ = ["givens_coeffs", "apply_givens", "givens_qr", "eliminate_stacked_triangles"]


def givens_coeffs(a: float, b: float) -> tuple[float, float]:
    """Compute ``(c, s)`` with ``[[c, s], [-s, c]] @ [a, b] = [r, 0]``.

    Uses the hypot-style stable formulation (no overflow for large a, b).
    """
    if b == 0.0:
        return 1.0, 0.0
    if a == 0.0:
        return 0.0, 1.0
    r = float(np.hypot(a, b))
    return a / r, b / r


def apply_givens(M: np.ndarray, i: int, k: int, c: float, s: float) -> None:
    """Left-multiply rows ``i`` and ``k`` of M by the rotation, in place."""
    ri = c * M[i] + s * M[k]
    rk = -s * M[i] + c * M[k]
    M[i] = ri
    M[k] = rk


def givens_qr(A: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Dense QR via Givens rotations; returns explicit thin ``(Q, R)``."""
    A = np.asarray(A, dtype=float)
    m, n = A.shape
    R = A.astype(float, copy=True)
    k = min(m, n)
    QT = np.eye(m)
    for j in range(k):
        for i in range(m - 1, j, -1):
            if R[i, j] == 0.0:
                continue
            c, s = givens_coeffs(R[j, j], R[i, j])
            apply_givens(R, j, i, c, s)
            apply_givens(QT, j, i, c, s)
            R[i, j] = 0.0
    return QT[:k].T, np.triu(R[:k])


def eliminate_stacked_triangles(R_top: np.ndarray, R_bot: np.ndarray) -> tuple[np.ndarray, list]:
    """Eliminate ``[R_top; R_bot]`` (two n x n upper triangles) with Givens.

    Exploits the sparsity pattern Figure 2(c) alludes to ("possibly
    exploiting the sparsity pattern"): entry (n + i, j) only requires
    rotations against row j, and rows below the diagonal of each triangle
    are already zero.  Returns the merged R and the rotation list
    ``(row_top, row_bot, c, s)`` sufficient to reapply the transformation.
    """
    n = R_top.shape[0]
    if R_top.shape != (n, n) or R_bot.shape != (n, n):
        raise ValueError("both factors must be square n x n triangles")
    M = np.vstack([np.triu(R_top), np.triu(R_bot)]).astype(float)
    rots = []
    for j in range(n):
        for i in range(n, n + j + 1):
            if M[i, j] == 0.0:
                continue
            c, s = givens_coeffs(M[j, j], M[i, j])
            apply_givens(M, j, i, c, s)
            M[i, j] = 0.0
            rots.append((j, i, c, s))
    return np.triu(M[:n]), rots
