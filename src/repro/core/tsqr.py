"""Tall-Skinny QR (TSQR) — Section II-B of the paper.

The tall matrix is divided vertically into small row blocks; each block is
factored independently (the paper's ``factor`` kernel), and the resulting
R factors are eliminated up a reduction tree (the ``factor_tree`` kernel).
The Q factor is left *implicit* as the collection of per-block and
per-tree-node Householder factors (the "series of small Us" of Figure 2),
from which Q or Q^T can be applied, or the explicit thin Q formed.

Two numeric execution strategies coexist:

``batched=True`` (default)
    The whole hot path is vectorized.  Level 0 is factored as one padded
    ``(blocks, block_rows, n)`` batch (a short last block is zero-padded —
    exact, since Householder reflectors never touch all-zero pad rows);
    every tree level is factored with one blocked batched QR per
    heights-signature, stacking all nodes of the level.  Q applications
    run through a precomputed :class:`_WyPlan`: fancy-index gather /
    scatter row maps plus cached compact-WY ``(V, T)`` factors, so each
    level of the tree is three batched GEMMs (``C -= V (T' (V' C))``)
    instead of a Python loop of per-reflector rank-1 updates.

``batched=False``
    The seed per-node reference path, kept verbatim: per-block loops,
    ``np.vstack`` gathers and BLAS2 reflector sweeps.  It is the
    correctness oracle for the property tests and the baseline the
    real-time benchmark measures speedups against.

This module is the pure-numerics implementation; the GPU-simulated
execution (launch costs, timing) reuses these factor objects through
:mod:`repro.caqr_gpu` — the simulator timeline depends only on shapes,
so both strategies produce the identical launch stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .dtypes import as_float_array, working_dtype
from .householder import geqr2, orm2r
from repro.obs import tracer as _obs
from repro.runtime.policy import UNSET, ExecutionPolicy, resolve_policy
from repro.smallblas.batched import batched_apply_blocked, batched_geqr2
from repro.smallblas.wy import apply_wy, geqr2_blocked, wy_factors
from .structured import StructuredStackFactor, structured_stack_qr
from .tree import TreeSchedule, batch_level, build_tree

__all__ = ["row_blocks", "TSQRFactors", "tsqr", "tsqr_qr", "apply_wy_plan"]


def row_blocks(m: int, block_rows: int) -> list[tuple[int, int]]:
    """Partition ``m`` rows into contiguous blocks of height ``block_rows``.

    The last block may be shorter.  ``block_rows`` is the paper's block
    height (64 in the reference configuration, so that the tree reduction
    "ends when the panel height becomes less than 64").
    """
    if m < 1:
        raise ValueError("m must be positive")
    if block_rows < 1:
        raise ValueError("block_rows must be positive")
    return [(i, min(i + block_rows, m)) for i in range(0, m, block_rows)]


@dataclass
class _LevelZeroFactor:
    """Packed Householder factor of one level-0 row block."""

    rows: tuple[int, int]  # [start, stop) within the panel
    VR: np.ndarray
    tau: np.ndarray

    @property
    def r_height(self) -> int:
        """Rows of the upper-trapezoidal R this block passes up the tree."""
        return min(self.VR.shape[0], self.VR.shape[1])


@dataclass
class _TreeFactor:
    """Householder factor of one stacked-R elimination group.

    Either a dense packed ``(VR, tau)`` (the ``factor_tree`` kernel's
    layout) or a sparsity-exploiting :class:`StructuredStackFactor`
    (Figure 2(c)'s optional optimization).
    """

    group: tuple[int, ...]  # member level-0 block indices (first survives)
    heights: tuple[int, ...]  # R rows contributed by each member
    VR: np.ndarray | None = None
    tau: np.ndarray | None = None
    structured: StructuredStackFactor | None = None

    def apply_qt_stack(self, stacked: np.ndarray) -> np.ndarray:
        if self.structured is not None:
            return self.structured.apply_qt(stacked)
        return orm2r(self.VR, self.tau, stacked, transpose=True)

    def apply_q_stack(self, stacked: np.ndarray) -> np.ndarray:
        if self.structured is not None:
            return self.structured.apply_q(stacked)
        return orm2r(self.VR, self.tau, stacked, transpose=False)


@dataclass
class _WyPlan:
    """Precomputed batched application schedule for one dtype.

    Built once per factorization (or lazily for factors loaded from disk)
    and reused by every ``apply_qt`` / ``apply_q`` / ``form_q`` call.

    * Level 0: the uniform block prefix is applied through a zero-copy
      ``(count, h, w)`` reshape of the target's leading rows; a ragged
      tail block is applied as an exact-height batch of one.
    * Each tree level is a list of entries, one per heights-signature
      batch: a ``(nodes, H)`` fancy-index row map plus the stacked
      compact-WY ``(V, T)``.  Entries within a level touch disjoint rows.
    """

    dtype: np.dtype
    l0_count: int
    l0_h: int
    l0_V: np.ndarray | None
    l0_T: np.ndarray | None
    # (row_start, real_height, V, T); V may be taller than real_height,
    # in which case the extra reflector rows are exact zeros (padding).
    l0_tail: list[tuple[int, int, np.ndarray, np.ndarray]]
    # per level: [("wy", idx, V, T) | ("structured", tree_factor, idx)]
    levels: list[list[tuple]]


def _member_rows(
    blocks: list[_LevelZeroFactor], group: tuple[int, ...], heights: tuple[int, ...]
) -> np.ndarray:
    """1-D row indices a tree node's stacked R occupies in the panel."""
    parts = [
        np.arange(blocks[i].rows[0], blocks[i].rows[0] + h, dtype=np.intp)
        for i, h in zip(group, heights)
    ]
    return np.concatenate(parts)


def _level_row_index(
    blocks: list[_LevelZeroFactor],
    groups: list[tuple[int, ...]],
    sig: tuple[int, ...],
) -> np.ndarray:
    """``(len(groups), sum(sig))`` gather/scatter map for one level batch."""
    if len(set(sig)) == 1:
        hr = sig[0]
        starts = np.fromiter(
            (blocks[i].rows[0] for grp in groups for i in grp),
            dtype=np.intp,
            count=len(groups) * len(sig),
        )
        return (starts[:, None] + np.arange(hr, dtype=np.intp)).reshape(
            len(groups), len(sig) * hr
        )
    return np.stack([_member_rows(blocks, grp, sig) for grp in groups])


def _convert_plan(src: _WyPlan, dt: np.dtype) -> _WyPlan:
    """Re-key an apply plan to a new working dtype (arrays cast once)."""

    def cast(a: np.ndarray | None) -> np.ndarray | None:
        return None if a is None else a.astype(dt)

    tail = [(s, h, V.astype(dt), T.astype(dt)) for s, h, V, T in src.l0_tail]
    levels = []
    for entries in src.levels:
        out = []
        for entry in entries:
            if entry[0] == "wy":
                _, idx, V, T = entry
                out.append(("wy", idx, V.astype(dt), T.astype(dt)))
            else:
                out.append(entry)
        levels.append(out)
    return _WyPlan(
        dtype=dt,
        l0_count=src.l0_count,
        l0_h=src.l0_h,
        l0_V=cast(src.l0_V),
        l0_T=cast(src.l0_T),
        l0_tail=tail,
        levels=levels,
    )


def _plan_from_factors(f: "TSQRFactors", dt: np.dtype) -> _WyPlan:
    """Build an apply plan from stored per-node factors.

    Used for factors that were not produced by the batched factorization
    (loaded from disk via :mod:`repro.io`, or factored with
    ``batched=False`` and then applied with ``batched=True``).
    """
    count, h = f._uniform_prefix()
    V0 = T0 = None
    if count > 0:
        VRs = np.stack([f.blocks[i].VR for i in range(count)])
        taus = np.stack([f.blocks[i].tau for i in range(count)])
        if VRs.dtype != dt:
            VRs = VRs.astype(dt)
            taus = taus.astype(dt)
        V0, T0 = wy_factors(VRs, taus)
    tail = []
    for blk in f.blocks[count:]:
        s, e = blk.rows
        VR1 = blk.VR[None]
        tau1 = blk.tau[None]
        if VR1.dtype != dt:
            VR1 = VR1.astype(dt)
            tau1 = tau1.astype(dt)
        V1, T1 = wy_factors(VR1, tau1)
        tail.append((s, e - s, V1, T1))
    levels: list[list[tuple]] = []
    for level_factors in f.tree_factors:
        entries: list[tuple] = []
        dense: dict[tuple[int, ...], list[_TreeFactor]] = {}
        for tf in level_factors:
            if tf.structured is not None:
                entries.append(("structured", tf, _member_rows(f.blocks, tf.group, tf.heights)))
            else:
                dense.setdefault(tuple(tf.heights), []).append(tf)
        for sig, tfs in dense.items():
            VRs = np.stack([tf.VR for tf in tfs])
            taus = np.stack([tf.tau for tf in tfs])
            if VRs.dtype != dt:
                VRs = VRs.astype(dt)
                taus = taus.astype(dt)
            V, T = wy_factors(VRs, taus)
            idx = _level_row_index(f.blocks, [tf.group for tf in tfs], sig)
            entries.append(("wy", idx, V, T))
        levels.append(entries)
    return _WyPlan(
        dtype=dt, l0_count=count, l0_h=h, l0_V=V0, l0_T=T0, l0_tail=tail, levels=levels
    )


def _plan_apply_level0(plan: _WyPlan, B: np.ndarray, transpose: bool) -> None:
    """Level-0 compact-WY application (``apply_qt_h``), batched."""
    if _obs.enabled():
        with _obs.span("apply.level0", cat="apply.level0", cols=int(B.shape[1])):
            _plan_apply_level0_impl(plan, B, transpose)
        return
    _plan_apply_level0_impl(plan, B, transpose)


def _plan_apply_level0_impl(plan: _WyPlan, B: np.ndarray, transpose: bool) -> None:
    w = B.shape[1]
    if plan.l0_count:
        count, h = plan.l0_count, plan.l0_h
        seg = B[: count * h]
        tiles = seg.reshape(count, h, w)
        if np.shares_memory(tiles, B):
            # Zero-copy: GEMM reads/writes straight through the strided
            # view — no gather, no scatter.
            apply_wy(plan.l0_V, plan.l0_T, tiles, transpose=transpose)
        else:
            tiles = np.ascontiguousarray(seg).reshape(count, h, w)
            apply_wy(plan.l0_V, plan.l0_T, tiles, transpose=transpose)
            seg[:] = tiles.reshape(count * h, w)
    for start, h_real, V1, T1 in plan.l0_tail:
        hv = V1.shape[1]
        if hv == h_real:
            apply_wy(V1, T1, B[start : start + h_real][None], transpose=transpose)
        else:
            # Padded batch of one: the V rows past h_real are exact zeros,
            # so the update on the pad rows is a no-op.
            sub = np.zeros((1, hv, w), dtype=B.dtype)
            sub[0, :h_real] = B[start : start + h_real]
            apply_wy(V1, T1, sub, transpose=transpose)
            B[start : start + h_real] = sub[0, :h_real]


def apply_wy_plan(plan: _WyPlan, B: np.ndarray, transpose: bool) -> None:
    """Apply a planned implicit Q (``transpose=True`` for Q^T) to ``B``.

    This is the whole batched application pipeline — level 0 through the
    tree levels for Q^T, the reverse for Q — factored out so the
    look-ahead executor (:mod:`repro.graph.executor`) can drive the same
    arithmetic on trailing-matrix column tiles.
    """
    if transpose:
        _plan_apply_level0(plan, B, transpose=True)
        for entries in plan.levels:
            _plan_apply_level(entries, B, transpose=True)
    else:
        for entries in reversed(plan.levels):
            _plan_apply_level(entries, B, transpose=False)
        _plan_apply_level0(plan, B, transpose=False)


def _plan_apply_level(entries: list[tuple], B: np.ndarray, transpose: bool) -> None:
    """One tree level (``apply_qt_tree``): gather, batched WY, scatter."""
    if _obs.enabled():
        with _obs.span("apply.tree", cat="apply.tree", cols=int(B.shape[1])):
            _plan_apply_level_impl(entries, B, transpose)
        return
    _plan_apply_level_impl(entries, B, transpose)


def _plan_apply_level_impl(entries: list[tuple], B: np.ndarray, transpose: bool) -> None:
    for entry in entries:
        if entry[0] == "wy":
            _, idx, V, T = entry
            sub = B[idx]
            apply_wy(V, T, sub, transpose=transpose)
            B[idx] = sub
        else:
            _, tf, idx = entry
            sub = B[idx]
            if transpose:
                tf.apply_qt_stack(sub)
            else:
                tf.apply_q_stack(sub)
            B[idx] = sub


@dataclass
class TSQRFactors:
    """Implicit Q of a TSQR factorization.

    Supports applying Q/Q^T to any conformal matrix (this is exactly the
    paper's trailing-matrix update: ``apply_qt_h`` for the level-0 factors
    and ``apply_qt_tree`` for the tree factors) and forming the explicit
    thin Q (the SORGQR-equivalent).

    ``batched`` selects the execution strategy for applications: the
    compact-WY plan path (default) or the seed per-node reference loop.
    Apply plans are cached per working dtype in ``_wy_plan``; factors
    loaded from disk build theirs lazily on first use.
    """

    m: int
    n: int
    blocks: list[_LevelZeroFactor]
    tree: TreeSchedule
    tree_factors: list[list[_TreeFactor]]  # one list per tree level
    R: np.ndarray  # final min(m, n) x n upper-triangular factor
    batched: bool = True
    _wy_plan: dict = field(default_factory=dict, repr=False, compare=False)
    _l0_ref: dict = field(default_factory=dict, repr=False, compare=False)

    # -- internal helpers -------------------------------------------------

    def _uniform_prefix(self) -> tuple[int, int]:
        """(count, height) of the leading run of equal-height blocks."""
        if not self.blocks:
            return 0, 0
        h = self.blocks[0].rows[1] - self.blocks[0].rows[0]
        count = 0
        for blk in self.blocks:
            if blk.rows[1] - blk.rows[0] != h:
                break
            count += 1
        return count, h

    def _plan_for(self, dt: np.dtype) -> _WyPlan:
        """Apply plan for working dtype ``dt`` (cached; built on demand)."""
        dt = np.dtype(dt)
        plan = self._wy_plan.get(dt)
        if plan is None:
            fdt = np.dtype(working_dtype(self.R))
            src = self._wy_plan.get(fdt)
            if src is None:
                src = _plan_from_factors(self, fdt)
                self._wy_plan[fdt] = src
            plan = src if dt == fdt else _convert_plan(src, dt)
            self._wy_plan[dt] = plan
        return plan

    def _level0_ref(self, dt: np.dtype):
        """Dtype-normalized stacked level-0 factors for the reference path.

        The seed rebuilt (and re-``astype``d) these stacks on every apply;
        they are now normalized once per dtype and cached.
        """
        key = np.dtype(dt)
        ent = self._l0_ref.get(key)
        if ent is None:
            count, h = self._uniform_prefix()
            if count > 1:
                VRs = np.stack([self.blocks[i].VR for i in range(count)])
                taus = np.stack([self.blocks[i].tau for i in range(count)])
                if VRs.dtype != key:
                    VRs = VRs.astype(key)
                    taus = taus.astype(key)
                ent = (count, h, np.ascontiguousarray(VRs), np.ascontiguousarray(taus))
            else:
                ent = (0, h, None, None)
            self._l0_ref[key] = ent
        return ent

    def _apply_level0(self, B: np.ndarray, transpose: bool) -> None:
        """Level-0 application, batched over the uniform block prefix."""
        count, h, VRs, taus = self._level0_ref(B.dtype)
        if count:
            seg = B[: count * h]
            stacked = np.ascontiguousarray(seg).reshape(count, h, B.shape[1])
            batched_apply_blocked(VRs, taus, stacked, transpose=transpose)
            seg[:] = stacked.reshape(count * h, B.shape[1])
        for blk in self.blocks[count:]:
            s, e = blk.rows
            orm2r(blk.VR, blk.tau, B[s:e], transpose=transpose)

    def _gather(self, B: np.ndarray, tf: _TreeFactor) -> tuple[np.ndarray, list[tuple[int, int]]]:
        """Collect the distributed row pieces a tree factor touches.

        This mirrors ``apply_qt_tree``: "collect the distributed components
        of the trailing matrix to be updated" (Section IV-D.4).
        """
        pieces = []
        ranges = []
        for idx, h in zip(tf.group, tf.heights):
            start = self.blocks[idx].rows[0]
            ranges.append((start, start + h))
            pieces.append(B[start : start + h])
        return np.vstack(pieces), ranges

    @staticmethod
    def _scatter(B: np.ndarray, stacked: np.ndarray, ranges: list[tuple[int, int]]) -> None:
        pos = 0
        for start, stop in ranges:
            h = stop - start
            B[start:stop] = stacked[pos : pos + h]
            pos += h

    # -- public API --------------------------------------------------------

    def apply_qt(self, B: np.ndarray) -> np.ndarray:
        """Compute ``Q^T B`` in place (B must have ``m`` rows)."""
        B = as_float_array(B)
        if B.shape[0] != self.m:
            raise ValueError(f"B must have {self.m} rows, got {B.shape[0]}")
        W = B[:, None] if B.ndim == 1 else B  # view: updates land in B
        if self.batched:
            apply_wy_plan(self._plan_for(W.dtype), W, transpose=True)
            return B
        # Level 0: independent per-block applications (apply_qt_h).
        self._apply_level0(W, transpose=True)
        # Tree levels, bottom-up (apply_qt_tree).
        for level_factors in self.tree_factors:
            for tf in level_factors:
                stacked, ranges = self._gather(W, tf)
                tf.apply_qt_stack(stacked)
                self._scatter(W, stacked, ranges)
        return B

    def apply_q(self, B: np.ndarray) -> np.ndarray:
        """Compute ``Q B`` in place (B must have ``m`` rows)."""
        B = as_float_array(B)
        if B.shape[0] != self.m:
            raise ValueError(f"B must have {self.m} rows, got {B.shape[0]}")
        W = B[:, None] if B.ndim == 1 else B  # view: updates land in B
        if self.batched:
            apply_wy_plan(self._plan_for(W.dtype), W, transpose=False)
            return B
        for level_factors in reversed(self.tree_factors):
            for tf in level_factors:
                stacked, ranges = self._gather(W, tf)
                tf.apply_q_stack(stacked)
                self._scatter(W, stacked, ranges)
        self._apply_level0(W, transpose=False)
        return B

    def form_q(self) -> np.ndarray:
        """Form the explicit thin ``m x min(m, n)`` orthonormal Q."""
        k = min(self.m, self.n)
        Q = np.zeros((self.m, k), dtype=working_dtype(self.R))
        np.fill_diagonal(Q, 1.0)
        return self.apply_q(Q)


def _tsqr_batched(
    A: np.ndarray,
    m: int,
    n: int,
    block_rows: int,
    ranges: list[tuple[int, int]],
    tree: TreeSchedule,
    structured: bool,
) -> TSQRFactors:
    """Fully-batched TSQR: one blocked QR per level, plan prebuilt."""
    dt = A.dtype
    nb = len(ranges)
    h_last = ranges[-1][1] - ranges[-1][0]
    ragged = nb > 1 and h_last != block_rows
    l0_count = nb - 1 if ragged else nb
    if nb == 1:
        stack = A[None, :, :]
    else:
        # The full-height blocks are an axis-0 reshape — a view, no copy.
        # A ragged last block is factored separately as a batch of one at
        # its exact height, so neither the factor nor later Q applies
        # ever touch pad rows.
        stack = A[: l0_count * block_rows].reshape(l0_count, block_rows, n)
    with _obs.span("tsqr.level0", cat="factor.level0", blocks=nb):
        VRb, taub, Vb, Tb = geqr2_blocked(stack)
    bh = stack.shape[1]
    k0 = min(bh, n)

    blocks: list[_LevelZeroFactor] = []
    for i, (s, e) in enumerate(ranges[:l0_count]):
        blocks.append(_LevelZeroFactor(rows=(s, e), VR=VRb[i], tau=taub[i]))

    Rb = np.triu(VRb[:, :k0, :])
    current_r: dict[int, np.ndarray] = {}
    for i in range(l0_count):
        current_r[i] = Rb[i]

    l0_tail = []
    if ragged:
        s, e = ranges[-1]
        with _obs.span("tsqr.level0", cat="factor.level0", blocks=1):
            VRl, taul, Vl, Tl = geqr2_blocked(A[s:e][None, :, :])
        blocks.append(_LevelZeroFactor(rows=(s, e), VR=VRl[0], tau=taul[0]))
        kl = min(h_last, n)
        current_r[nb - 1] = np.triu(VRl[0, :kl, :])
        l0_tail.append((s, h_last, Vl, Tl))

    tree_factors: list[list[_TreeFactor]] = []
    plan_levels: list[list[tuple]] = []
    for level in tree.levels:
        level_factors: list[_TreeFactor | None] = [None] * len(level)
        entries: list[tuple] = []
        if structured:
            for p, group in enumerate(level):
                heights = tuple(current_r[i].shape[0] for i in group)
                with _obs.span("tsqr.tree", cat="factor.tree", groups=1):
                    sf = structured_stack_qr([current_r[i] for i in group])
                tf = _TreeFactor(group=group, heights=heights, structured=sf)
                level_factors[p] = tf
                entries.append(("structured", tf, _member_rows(blocks, group, heights)))
                current_r[group[0]] = sf.R
                for dead in group[1:]:
                    del current_r[dead]
        else:
            sig_batches = batch_level(
                level, key=lambda grp: tuple(current_r[i].shape[0] for i in grp)
            )
            for sig, poss in sig_batches.items():
                groups = [level[p] for p in poss]
                g = len(groups)
                H = sum(sig)
                if len(set(sig)) == 1:
                    arrs = [current_r[i] for grp in groups for i in grp]
                    stacked = np.stack(arrs).reshape(g, H, n)
                else:
                    stacked = np.stack(
                        [np.vstack([current_r[i] for i in grp]) for grp in groups]
                    )
                with _obs.span("tsqr.tree", cat="factor.tree", groups=g):
                    VRt, taut, Vt, Tt = geqr2_blocked(stacked)
                kt = min(H, n)
                Rt = np.triu(VRt[:, :kt, :])
                entries.append(("wy", _level_row_index(blocks, groups, sig), Vt, Tt))
                for gi, (p, grp) in enumerate(zip(poss, groups)):
                    level_factors[p] = _TreeFactor(
                        group=grp, heights=sig, VR=VRt[gi], tau=taut[gi]
                    )
                    current_r[grp[0]] = Rt[gi]
                    for dead in grp[1:]:
                        del current_r[dead]
        tree_factors.append(list(level_factors))
        plan_levels.append(entries)

    (survivor_idx,) = list(current_r)
    R = current_r[survivor_idx]
    k = min(m, n)
    if R.shape[0] < k:
        R = np.vstack([R, np.zeros((k - R.shape[0], n), dtype=R.dtype)])
    f = TSQRFactors(
        m=m, n=n, blocks=blocks, tree=tree, tree_factors=tree_factors, R=R[:k], batched=True
    )
    f._wy_plan[np.dtype(dt)] = _WyPlan(
        dtype=np.dtype(dt),
        l0_count=l0_count,
        l0_h=bh,
        l0_V=Vb[:l0_count],
        l0_T=Tb[:l0_count],
        l0_tail=l0_tail,
        levels=plan_levels,
    )
    return f


def _tsqr_reference(
    A: np.ndarray,
    m: int,
    n: int,
    block_rows: int,
    ranges: list[tuple[int, int]],
    tree: TreeSchedule,
    structured: bool,
) -> TSQRFactors:
    """The seed per-node factorization path (correctness oracle)."""
    # Level 0: factor every row block independently.  Full-height blocks
    # are factored through the batched kernel (one "thread block" per
    # small QR, vectorized across the batch — Section I's many-small-QRs
    # observation); only a ragged last block falls back to the scalar path.
    blocks = []
    current_r: dict[int, np.ndarray] = {}
    n_full = sum(1 for (s, e) in ranges if e - s == block_rows)
    with _obs.span("tsqr.level0", cat="factor.level0", blocks=len(ranges)):
        if n_full > 1 and m >= block_rows:
            stack = np.ascontiguousarray(A[: n_full * block_rows]).reshape(n_full, block_rows, n)
            VRb, taub = batched_geqr2(stack)
        else:
            n_full = 0
            VRb = taub = None
        for i, (s, e) in enumerate(ranges):
            if i < n_full:
                VR, tau = VRb[i], taub[i]
            else:
                VR, tau = geqr2(A[s:e])
            blk = _LevelZeroFactor(rows=(s, e), VR=VR, tau=tau)
            blocks.append(blk)
            current_r[i] = np.triu(VR[: blk.r_height, :])

    # Tree reduction: stack surviving Rs and factor the stacks.
    tree_factors: list[list[_TreeFactor]] = []
    for level in tree.levels:
        level_factors = []
        with _obs.span("tsqr.tree", cat="factor.tree", groups=len(level)):
            for group in level:
                heights = tuple(current_r[i].shape[0] for i in group)
                if structured:
                    sf = structured_stack_qr([current_r[i] for i in group])
                    tf = _TreeFactor(group=group, heights=heights, structured=sf)
                    new_r = sf.R
                else:
                    stacked = np.vstack([current_r[i] for i in group])
                    VR, tau = geqr2(stacked)
                    tf = _TreeFactor(group=group, heights=heights, VR=VR, tau=tau)
                    new_r = np.triu(VR[: min(stacked.shape[0], n), :])
                level_factors.append(tf)
                survivor = group[0]
                current_r[survivor] = new_r
                for dead in group[1:]:
                    del current_r[dead]
        tree_factors.append(level_factors)

    (survivor_idx,) = list(current_r)
    R = current_r[survivor_idx]
    # Pad R to min(m, n) rows in the degenerate case of very short matrices.
    k = min(m, n)
    if R.shape[0] < k:
        R = np.vstack([R, np.zeros((k - R.shape[0], n), dtype=R.dtype)])
    return TSQRFactors(
        m=m, n=n, blocks=blocks, tree=tree, tree_factors=tree_factors, R=R[:k], batched=False
    )


def _tsqr_impl(
    A: np.ndarray,
    block_rows: int,
    tree_shape: str,
    structured: bool,
    batched: bool,
) -> TSQRFactors:
    """Factor an *already validated* matrix with TSQR (no guard layer).

    Internal callers (the CAQR panel loop, the look-ahead executor's
    fallback, the randomized-SVD range finder, :class:`QRPlan`) come in
    here directly: the matrix was validated exactly once at the public
    entry point, so this path never re-scans it.
    """
    m, n = A.shape
    # TSQR requires the block height to be at least the panel width so every
    # level-0 R is a full n x n triangle and the final R lands contiguously
    # in the first block (the paper always has block height 64 >= width 16).
    block_rows = max(block_rows, n)
    ranges = row_blocks(m, block_rows)
    tree = build_tree(len(ranges), tree_shape)
    if batched:
        return _tsqr_batched(A, m, n, block_rows, ranges, tree, structured)
    return _tsqr_reference(A, m, n, block_rows, ranges, tree, structured)


def tsqr(
    A: np.ndarray,
    block_rows: int = UNSET,
    tree_shape: str = UNSET,
    structured: bool = UNSET,
    batched: bool = UNSET,
    nonfinite: str = UNSET,
    *,
    policy: ExecutionPolicy | None = None,
) -> TSQRFactors:
    """Factor a tall-skinny matrix with TSQR (Figure 2).

    Prefer ``policy=`` (an :class:`~repro.runtime.policy.ExecutionPolicy`
    naming the execution path, geometry and guard behaviour).  The loose
    kwargs remain as deprecation shims mapped by
    :func:`~repro.runtime.policy.resolve_policy`:

    Args:
        A: ``m x n`` matrix (any aspect ratio is accepted; TSQR pays off
            for ``m >> n``).
        block_rows: height of the level-0 row blocks.
        tree_shape: reduction-tree shape (see :mod:`repro.core.tree`).
        structured: (deprecated) eliminate the stacked Rs with the
            sparsity-exploiting structured QR (~3x fewer tree flops);
            maps to ``path="structured"``.
        batched: (deprecated) vectorize the factorization and all later
            Q applications; ``False`` maps to the seed reference path.
        nonfinite: (deprecated) non-finite input policy (``"raise"`` /
            ``"propagate"``); see :mod:`repro.verify.guards`.
        policy: the execution policy; mutually exclusive with the
            legacy kwargs above.

    Returns:
        A :class:`TSQRFactors` holding the implicit Q and the final R.
    """
    from repro.verify.guards import validate_matrix

    policy = resolve_policy(
        "tsqr",
        policy,
        batched=batched,
        structured=structured,
        nonfinite=nonfinite,
        block_rows=block_rows,
        tree_shape=tree_shape,
    )
    with _obs.maybe_trace(policy.trace):
        A = validate_matrix(A, where="tsqr", nonfinite=policy.nonfinite)
        with _obs.span(
            "tsqr", cat="factor", m=A.shape[0], n=A.shape[1], path=policy.path
        ):
            return _tsqr_impl(
                A,
                block_rows=policy.block_rows,
                tree_shape=policy.tree_shape,
                structured=policy.uses_structured,
                batched=policy.uses_batched,
            )


def tsqr_qr(
    A: np.ndarray,
    block_rows: int = UNSET,
    tree_shape: str = UNSET,
    structured: bool = UNSET,
    batched: bool = UNSET,
    nonfinite: str = UNSET,
    *,
    policy: ExecutionPolicy | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Convenience: explicit thin ``(Q, R)`` via TSQR."""
    f = tsqr(
        A,
        block_rows=block_rows,
        tree_shape=tree_shape,
        structured=structured,
        batched=batched,
        nonfinite=nonfinite,
        policy=policy,
    )
    return f.form_q(), f.R
