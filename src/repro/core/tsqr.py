"""Tall-Skinny QR (TSQR) — Section II-B of the paper.

The tall matrix is divided vertically into small row blocks; each block is
factored independently (the paper's ``factor`` kernel), and the resulting
R factors are eliminated up a reduction tree (the ``factor_tree`` kernel).
The Q factor is left *implicit* as the collection of per-block and
per-tree-node Householder factors (the "series of small Us" of Figure 2),
from which Q or Q^T can be applied, or the explicit thin Q formed.

This module is the pure-numerics implementation; the GPU-simulated
execution (launch costs, timing) reuses these factor objects through
:mod:`repro.caqr_gpu`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dtypes import as_float_array, working_dtype
from .householder import geqr2, orm2r
from repro.smallblas.batched import batched_apply_blocked, batched_geqr2
from .structured import StructuredStackFactor, structured_stack_qr
from .tree import TreeSchedule, build_tree

__all__ = ["row_blocks", "TSQRFactors", "tsqr", "tsqr_qr"]


def row_blocks(m: int, block_rows: int) -> list[tuple[int, int]]:
    """Partition ``m`` rows into contiguous blocks of height ``block_rows``.

    The last block may be shorter.  ``block_rows`` is the paper's block
    height (64 in the reference configuration, so that the tree reduction
    "ends when the panel height becomes less than 64").
    """
    if m < 1:
        raise ValueError("m must be positive")
    if block_rows < 1:
        raise ValueError("block_rows must be positive")
    return [(i, min(i + block_rows, m)) for i in range(0, m, block_rows)]


@dataclass
class _LevelZeroFactor:
    """Packed Householder factor of one level-0 row block."""

    rows: tuple[int, int]  # [start, stop) within the panel
    VR: np.ndarray
    tau: np.ndarray

    @property
    def r_height(self) -> int:
        """Rows of the upper-trapezoidal R this block passes up the tree."""
        return min(self.VR.shape[0], self.VR.shape[1])


@dataclass
class _TreeFactor:
    """Householder factor of one stacked-R elimination group.

    Either a dense packed ``(VR, tau)`` (the ``factor_tree`` kernel's
    layout) or a sparsity-exploiting :class:`StructuredStackFactor`
    (Figure 2(c)'s optional optimization).
    """

    group: tuple[int, ...]  # member level-0 block indices (first survives)
    heights: tuple[int, ...]  # R rows contributed by each member
    VR: np.ndarray | None = None
    tau: np.ndarray | None = None
    structured: StructuredStackFactor | None = None

    def apply_qt_stack(self, stacked: np.ndarray) -> np.ndarray:
        if self.structured is not None:
            return self.structured.apply_qt(stacked)
        return orm2r(self.VR, self.tau, stacked, transpose=True)

    def apply_q_stack(self, stacked: np.ndarray) -> np.ndarray:
        if self.structured is not None:
            return self.structured.apply_q(stacked)
        return orm2r(self.VR, self.tau, stacked, transpose=False)


@dataclass
class TSQRFactors:
    """Implicit Q of a TSQR factorization.

    Supports applying Q/Q^T to any conformal matrix (this is exactly the
    paper's trailing-matrix update: ``apply_qt_h`` for the level-0 factors
    and ``apply_qt_tree`` for the tree factors) and forming the explicit
    thin Q (the SORGQR-equivalent).
    """

    m: int
    n: int
    blocks: list[_LevelZeroFactor]
    tree: TreeSchedule
    tree_factors: list[list[_TreeFactor]]  # one list per tree level
    R: np.ndarray  # final min(m, n) x n upper-triangular factor

    # -- internal helpers -------------------------------------------------

    def _uniform_prefix(self) -> tuple[int, int]:
        """(count, height) of the leading run of equal-height blocks."""
        if not self.blocks:
            return 0, 0
        h = self.blocks[0].rows[1] - self.blocks[0].rows[0]
        count = 0
        for blk in self.blocks:
            if blk.rows[1] - blk.rows[0] != h:
                break
            count += 1
        return count, h

    def _apply_level0(self, B: np.ndarray, transpose: bool) -> None:
        """Level-0 application, batched over the uniform block prefix."""
        count, h = self._uniform_prefix()
        if count > 1:
            VRs = np.stack([self.blocks[i].VR for i in range(count)])
            taus = np.stack([self.blocks[i].tau for i in range(count)])
            seg = B[: count * h]
            stacked = np.ascontiguousarray(seg).reshape(count, h, B.shape[1])
            if stacked.dtype != VRs.dtype:
                VRs = VRs.astype(stacked.dtype)
                taus = taus.astype(stacked.dtype)
            batched_apply_blocked(VRs, taus, stacked, transpose=transpose)
            seg[:] = stacked.reshape(count * h, B.shape[1])
        else:
            count = 0
        for blk in self.blocks[count:]:
            s, e = blk.rows
            orm2r(blk.VR, blk.tau, B[s:e], transpose=transpose)

    def _gather(self, B: np.ndarray, tf: _TreeFactor) -> tuple[np.ndarray, list[tuple[int, int]]]:
        """Collect the distributed row pieces a tree factor touches.

        This mirrors ``apply_qt_tree``: "collect the distributed components
        of the trailing matrix to be updated" (Section IV-D.4).
        """
        pieces = []
        ranges = []
        for idx, h in zip(tf.group, tf.heights):
            start = self.blocks[idx].rows[0]
            ranges.append((start, start + h))
            pieces.append(B[start : start + h])
        return np.vstack(pieces), ranges

    @staticmethod
    def _scatter(B: np.ndarray, stacked: np.ndarray, ranges: list[tuple[int, int]]) -> None:
        pos = 0
        for start, stop in ranges:
            h = stop - start
            B[start:stop] = stacked[pos : pos + h]
            pos += h

    # -- public API --------------------------------------------------------

    def apply_qt(self, B: np.ndarray) -> np.ndarray:
        """Compute ``Q^T B`` in place (B must have ``m`` rows)."""
        B = as_float_array(B)
        if B.shape[0] != self.m:
            raise ValueError(f"B must have {self.m} rows, got {B.shape[0]}")
        # Level 0: independent per-block applications (apply_qt_h).
        self._apply_level0(B, transpose=True)
        # Tree levels, bottom-up (apply_qt_tree).
        for level_factors in self.tree_factors:
            for tf in level_factors:
                stacked, ranges = self._gather(B, tf)
                tf.apply_qt_stack(stacked)
                self._scatter(B, stacked, ranges)
        return B

    def apply_q(self, B: np.ndarray) -> np.ndarray:
        """Compute ``Q B`` in place (B must have ``m`` rows)."""
        B = as_float_array(B)
        if B.shape[0] != self.m:
            raise ValueError(f"B must have {self.m} rows, got {B.shape[0]}")
        for level_factors in reversed(self.tree_factors):
            for tf in level_factors:
                stacked, ranges = self._gather(B, tf)
                tf.apply_q_stack(stacked)
                self._scatter(B, stacked, ranges)
        self._apply_level0(B, transpose=False)
        return B

    def form_q(self) -> np.ndarray:
        """Form the explicit thin ``m x min(m, n)`` orthonormal Q."""
        k = min(self.m, self.n)
        Q = np.zeros((self.m, k), dtype=working_dtype(self.R))
        np.fill_diagonal(Q, 1.0)
        return self.apply_q(Q)


def tsqr(
    A: np.ndarray,
    block_rows: int = 64,
    tree_shape: str = "quad",
    structured: bool = False,
) -> TSQRFactors:
    """Factor a tall-skinny matrix with TSQR (Figure 2).

    Args:
        A: ``m x n`` matrix (any aspect ratio is accepted; TSQR pays off
            for ``m >> n``).
        block_rows: height of the level-0 row blocks.
        tree_shape: reduction-tree shape (see :mod:`repro.core.tree`).
        structured: eliminate the stacked Rs with the sparsity-exploiting
            structured QR (~3x fewer tree flops) instead of the dense
            ``factor_tree`` layout.

    Returns:
        A :class:`TSQRFactors` holding the implicit Q and the final R.
    """
    A = as_float_array(A)
    if A.ndim != 2:
        raise ValueError("A must be 2-D")
    m, n = A.shape
    # TSQR requires the block height to be at least the panel width so every
    # level-0 R is a full n x n triangle and the final R lands contiguously
    # in the first block (the paper always has block height 64 >= width 16).
    block_rows = max(block_rows, n)
    ranges = row_blocks(m, block_rows)
    tree = build_tree(len(ranges), tree_shape)

    # Level 0: factor every row block independently.  Full-height blocks
    # are factored through the batched kernel (one "thread block" per
    # small QR, vectorized across the batch — Section I's many-small-QRs
    # observation); only a ragged last block falls back to the scalar path.
    blocks = []
    current_r: dict[int, np.ndarray] = {}
    n_full = sum(1 for (s, e) in ranges if e - s == block_rows)
    if n_full > 1 and m >= block_rows:
        stack = np.ascontiguousarray(A[: n_full * block_rows]).reshape(n_full, block_rows, n)
        VRb, taub = batched_geqr2(stack)
    else:
        n_full = 0
        VRb = taub = None
    for i, (s, e) in enumerate(ranges):
        if i < n_full:
            VR, tau = VRb[i], taub[i]
        else:
            VR, tau = geqr2(A[s:e])
        blk = _LevelZeroFactor(rows=(s, e), VR=VR, tau=tau)
        blocks.append(blk)
        current_r[i] = np.triu(VR[: blk.r_height, :])

    # Tree reduction: stack surviving Rs and factor the stacks.
    tree_factors: list[list[_TreeFactor]] = []
    for level in tree.levels:
        level_factors = []
        for group in level:
            heights = tuple(current_r[i].shape[0] for i in group)
            if structured:
                sf = structured_stack_qr([current_r[i] for i in group])
                tf = _TreeFactor(group=group, heights=heights, structured=sf)
                new_r = sf.R
            else:
                stacked = np.vstack([current_r[i] for i in group])
                VR, tau = geqr2(stacked)
                tf = _TreeFactor(group=group, heights=heights, VR=VR, tau=tau)
                new_r = np.triu(VR[: min(stacked.shape[0], n), :])
            level_factors.append(tf)
            survivor = group[0]
            current_r[survivor] = new_r
            for dead in group[1:]:
                del current_r[dead]
        tree_factors.append(level_factors)

    (survivor_idx,) = list(current_r)
    R = current_r[survivor_idx]
    # Pad R to min(m, n) rows in the degenerate case of very short matrices.
    k = min(m, n)
    if R.shape[0] < k:
        R = np.vstack([R, np.zeros((k - R.shape[0], n), dtype=R.dtype)])
    return TSQRFactors(m=m, n=n, blocks=blocks, tree=tree, tree_factors=tree_factors, R=R[:k])


def tsqr_qr(
    A: np.ndarray,
    block_rows: int = 64,
    tree_shape: str = "quad",
    structured: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Convenience: explicit thin ``(Q, R)`` via TSQR."""
    f = tsqr(A, block_rows=block_rows, tree_shape=tree_shape, structured=structured)
    return f.form_q(), f.R
