"""Triangular solves and Cholesky, built from scratch.

Substrate routines needed by Cholesky QR (Section II's stability
comparison) and the QR-based least-squares solver.  Vectorized row/column
sweeps over NumPy — no calls into ``numpy.linalg``/``scipy.linalg``
factorizations.
"""

from __future__ import annotations

import numpy as np

__all__ = ["solve_upper", "solve_lower", "cholesky", "SingularTriangularError"]


class SingularTriangularError(ValueError):
    """Raised when a triangular solve or Cholesky hits a zero/negative pivot."""


def solve_upper(R: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Solve ``R X = B`` for upper-triangular R by back substitution."""
    R = np.asarray(R, dtype=float)
    B = np.asarray(B, dtype=float)
    n = R.shape[0]
    if R.shape[1] != n:
        raise ValueError("R must be square")
    squeeze = B.ndim == 1
    X = B.reshape(n, -1).astype(float, copy=True)
    for i in range(n - 1, -1, -1):
        if R[i, i] == 0.0:
            raise SingularTriangularError(f"zero pivot at row {i}")
        X[i] -= R[i, i + 1 :] @ X[i + 1 :]
        X[i] /= R[i, i]
    return X.ravel() if squeeze else X


def solve_lower(L: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Solve ``L X = B`` for lower-triangular L by forward substitution."""
    L = np.asarray(L, dtype=float)
    B = np.asarray(B, dtype=float)
    n = L.shape[0]
    if L.shape[1] != n:
        raise ValueError("L must be square")
    squeeze = B.ndim == 1
    X = B.reshape(n, -1).astype(float, copy=True)
    for i in range(n):
        if L[i, i] == 0.0:
            raise SingularTriangularError(f"zero pivot at row {i}")
        X[i] -= L[i, :i] @ X[:i]
        X[i] /= L[i, i]
    return X.ravel() if squeeze else X


def cholesky(A: np.ndarray) -> np.ndarray:
    """Lower Cholesky factor of a symmetric positive-definite matrix.

    Outer-product (right-looking) form with a vectorized trailing update.
    Raises :class:`SingularTriangularError` if A is not numerically
    positive definite — which is precisely how Cholesky QR fails on
    ill-conditioned matrices (cond(A^T A) = cond(A)^2).
    """
    A = np.array(A, dtype=float, copy=True)
    n = A.shape[0]
    if A.shape[1] != n:
        raise ValueError("A must be square")
    L = np.zeros_like(A)
    for j in range(n):
        d = A[j, j]
        if d <= 0.0 or not np.isfinite(d):
            raise SingularTriangularError(f"non-positive pivot {d!r} at column {j}")
        d = np.sqrt(d)
        L[j, j] = d
        if j + 1 < n:
            col = A[j + 1 :, j] / d
            L[j + 1 :, j] = col
            A[j + 1 :, j + 1 :] -= np.outer(col, col)
            A[j + 1 :, j] = 0.0
        A[j, j] = 0.0
    return L
