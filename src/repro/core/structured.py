"""Structured QR of stacked upper-triangular factors.

Figure 2(c) notes the stacked Rs can be eliminated "possibly exploiting
the sparsity pattern".  The dense ``factor_tree`` treats the ``q``
stacked ``n x n`` triangles as a dense ``qn x n`` block (``~2 q n^3``
flops); the structured elimination below exploits that block ``b``'s
column ``j`` is only nonzero in its first ``j+1`` rows, shrinking both
the reflector support and the trailing update to ``~(2/3) q n^3`` flops
— a ~3x arithmetic saving at tree nodes.

The factor object stores sparse reflectors (support indices + values)
and applies Q/Q^T to conformal stacked matrices, so it can drop into the
TSQR tree as an alternative to the dense packed form.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from .dtypes import as_float_array, working_dtype
from .householder import house

__all__ = ["StructuredStackFactor", "structured_stack_qr", "structured_tree_flops", "dense_tree_flops"]


@dataclass
class _SparseReflector:
    """One Householder reflector restricted to its nonzero support."""

    rows: np.ndarray  # global row indices into the stacked matrix
    v: np.ndarray  # reflector values on those rows (v[0] == 1 at the pivot)
    tau: float


@dataclass
class StructuredStackFactor:
    """Implicit Q of a structured stacked-triangle QR."""

    total_rows: int
    n: int
    heights: tuple[int, ...]
    reflectors: list[_SparseReflector]
    R: np.ndarray
    flops: float  # arithmetic actually performed

    def apply_qt(self, B: np.ndarray) -> np.ndarray:
        """``B <- Q^T B`` in place for a stacked matrix with matching rows."""
        B = as_float_array(B)
        if B.shape[0] != self.total_rows:
            raise ValueError(f"B must have {self.total_rows} rows, got {B.shape[0]}")
        for r in self.reflectors:
            if r.tau == 0.0:
                continue
            sub = B[r.rows]
            w = sub.T @ r.v
            B[r.rows] = sub - r.tau * np.outer(r.v, w)
        return B

    def apply_q(self, B: np.ndarray) -> np.ndarray:
        """``B <- Q B`` in place for a stacked matrix with matching rows."""
        B = as_float_array(B)
        if B.shape[0] != self.total_rows:
            raise ValueError(f"B must have {self.total_rows} rows, got {B.shape[0]}")
        for r in reversed(self.reflectors):
            if r.tau == 0.0:
                continue
            sub = B[r.rows]
            w = sub.T @ r.v
            B[r.rows] = sub - r.tau * np.outer(r.v, w)
        return B


def _support_rows(j: int, heights: Sequence[int], offsets: Sequence[int]) -> np.ndarray:
    """Global rows that can be nonzero in column ``j`` at elimination time.

    The pivot is row ``j`` of the top block; each lower triangle ``b``
    contributes its rows ``0 .. min(j, h_b - 1)`` (an upper triangle's
    column ``j`` is nonzero only in its first ``j+1`` rows, and the
    elimination never fills below that within a block).
    """
    rows = [offsets[0] + j]
    for b in range(1, len(heights)):
        top = min(j + 1, heights[b])
        if top > 0:
            rows.extend(range(offsets[b], offsets[b] + top))
    return np.asarray(rows, dtype=np.intp)


def structured_stack_qr(rs: Sequence[np.ndarray]) -> StructuredStackFactor:
    """Factor a stack of upper-triangular/trapezoidal Rs, sparsity-aware.

    Args:
        rs: the gathered R factors; the first must have at least ``n``
            rows (it carries the pivots), later ones may be shorter
            trapezoids.

    Returns:
        :class:`StructuredStackFactor` whose ``R`` matches the dense
        elimination's up to column signs, at ~1/3 of the arithmetic.
    """
    if not rs:
        raise ValueError("structured_stack_qr needs at least one R")
    n = rs[0].shape[1]
    for r in rs:
        if r.ndim != 2 or r.shape[1] != n:
            raise ValueError("all stacked Rs must share the same column count")
    if rs[0].shape[0] < min(n, sum(r.shape[0] for r in rs)):
        raise ValueError("the first R must carry the pivot rows (height >= n)")
    dt = working_dtype(*rs)
    heights = tuple(r.shape[0] for r in rs)
    offsets = np.concatenate([[0], np.cumsum(heights)])[:-1]
    W = np.vstack([np.triu(np.asarray(r, dtype=dt)) for r in rs])
    total = W.shape[0]
    reflectors: list[_SparseReflector] = []
    flops = 0.0
    k = min(total, n)
    for j in range(k):
        rows = _support_rows(j, heights, offsets)
        col = W[rows, j]
        v, tau, beta = house(col)
        reflectors.append(_SparseReflector(rows=rows, v=v, tau=tau))
        W[rows[0], j] = beta
        W[rows[1:], j] = 0.0
        if tau != 0.0 and j + 1 < n:
            trailing = W[np.ix_(rows, np.arange(j + 1, n))]
            w = trailing.T @ v
            W[np.ix_(rows, np.arange(j + 1, n))] = trailing - tau * np.outer(v, w)
            flops += 4.0 * rows.size * (n - j - 1)
        flops += 3.0 * rows.size  # norm + scale of the reflector
    R = np.triu(W[:k, :n]) if heights[0] >= k else np.triu(W[:k])
    return StructuredStackFactor(
        total_rows=total, n=n, heights=heights, reflectors=reflectors, R=R, flops=flops
    )


def structured_tree_flops(arity: int, n: int) -> float:
    """Arithmetic of one structured tree elimination (q stacked n x n Rs)."""
    q = arity
    total = 0.0
    for j in range(n):
        support = 1 + (q - 1) * min(j + 1, n)
        total += 4.0 * support * (n - j - 1) + 3.0 * support
    return total


def dense_tree_flops(arity: int, n: int) -> float:
    """Arithmetic of the dense elimination of the same stack."""
    m = arity * n
    return 2.0 * m * n * n - 2.0 * n**3 / 3.0
