"""Floating-point dtype handling for the core numerics.

The paper computes in single precision throughout ("Everything here is
done using single-precision, which is adequate for our video
application", Section IV).  The core routines therefore preserve
``float32`` inputs end to end, while defaulting everything else
(float64, integers, lists) to double precision.

Complex input is rejected here, at the normalization layer: the
Householder kernels are real-arithmetic only, and the historical
behaviour — ``astype`` truncating the imaginary part with nothing but a
``ComplexWarning`` — silently corrupted every downstream factor.  See
:mod:`repro.verify.guards` for the full input-validation policy.
"""

from __future__ import annotations

import numpy as np

__all__ = ["working_dtype", "as_float_array", "eps_for"]


def working_dtype(*arrays: np.ndarray) -> np.dtype:
    """float32 iff every input is float32; float64 otherwise."""
    if arrays and all(np.asarray(a).dtype == np.float32 for a in arrays):
        return np.dtype(np.float32)
    return np.dtype(np.float64)


def as_float_array(A, copy: bool = False) -> np.ndarray:
    """Coerce to the working float dtype, preserving float32 inputs.

    Raises:
        TypeError: for complex input — truncating the imaginary part
            would silently corrupt the factorization.
    """
    A = np.asarray(A)
    if np.iscomplexobj(A):
        raise TypeError(
            "complex input is not supported: the CAQR/TSQR kernels are "
            "real-arithmetic only, and casting would discard the imaginary part"
        )
    dt = working_dtype(A)
    if copy:
        return np.array(A, dtype=dt, copy=True)
    return A if A.dtype == dt else A.astype(dt)


def eps_for(A: np.ndarray) -> float:
    """Machine epsilon of the array's working precision."""
    return float(np.finfo(working_dtype(np.asarray(A))).eps)
