"""Floating-point dtype handling for the core numerics.

The paper computes in single precision throughout ("Everything here is
done using single-precision, which is adequate for our video
application", Section IV).  The core routines therefore preserve
``float32`` inputs end to end, while defaulting everything else
(float64, integers, lists) to double precision.
"""

from __future__ import annotations

import numpy as np

__all__ = ["working_dtype", "as_float_array", "eps_for"]


def working_dtype(*arrays: np.ndarray) -> np.dtype:
    """float32 iff every input is float32; float64 otherwise."""
    if arrays and all(np.asarray(a).dtype == np.float32 for a in arrays):
        return np.dtype(np.float32)
    return np.dtype(np.float64)


def as_float_array(A, copy: bool = False) -> np.ndarray:
    """Coerce to the working float dtype, preserving float32 inputs."""
    A = np.asarray(A)
    dt = working_dtype(A)
    if copy:
        return np.array(A, dtype=dt, copy=True)
    return A if A.dtype == dt else A.astype(dt)


def eps_for(A: np.ndarray) -> float:
    """Machine epsilon of the array's working precision."""
    return float(np.finfo(working_dtype(np.asarray(A))).eps)
