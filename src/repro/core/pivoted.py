"""Column-pivoted (rank-revealing) Householder QR — LAPACK ``sgeqp3``-style.

``A P = Q R`` with R's diagonal non-increasing in magnitude, so the
numerical rank can be read off the diagonal.  Used by the library for
rank detection (e.g. validating the Robust PCA background rank) and as
the reference rank-revealing factorization in tests.

Implementation: classical column pivoting with Hammarling-style partial
column-norm downdating (recompute when cancellation makes the running
norm untrustworthy).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dtypes import as_float_array, eps_for
from .householder import apply_reflector, house

__all__ = ["PivotedQR", "qr_pivoted", "numerical_rank"]


@dataclass
class PivotedQR:
    """Result of a column-pivoted QR factorization."""

    Q: np.ndarray  # m x k thin orthonormal factor
    R: np.ndarray  # k x n upper trapezoidal, |diag| non-increasing
    piv: np.ndarray  # column permutation: A[:, piv] = Q R

    def rank(self, rtol: float | None = None) -> int:
        """Numerical rank: diagonal entries above ``rtol * |R[0, 0]|``."""
        d = np.abs(np.diag(self.R))
        if d.size == 0 or d[0] == 0.0:
            return 0
        if rtol is None:
            rtol = max(self.Q.shape[0], self.R.shape[1]) * eps_for(self.R)
        return int(np.sum(d > rtol * d[0]))

    def permutation_matrix(self) -> np.ndarray:
        n = self.piv.size
        P = np.zeros((n, n))
        P[self.piv, np.arange(n)] = 1.0
        return P


def qr_pivoted(A: np.ndarray) -> PivotedQR:
    """Factor ``A P = Q R`` with greedy column pivoting.

    At each step the column of largest remaining norm is swapped to the
    front; partial norms are downdated and recomputed on cancellation
    (the standard ``sgeqp3`` safeguard).
    """
    A = as_float_array(A, copy=True)
    if A.ndim != 2:
        raise ValueError("A must be 2-D")
    m, n = A.shape
    k = min(m, n)
    piv = np.arange(n)
    Q = np.eye(m, dtype=A.dtype)
    norms = np.linalg.norm(A, axis=0)
    ref_norms = norms.copy()
    eps = eps_for(A)
    for j in range(k):
        # Pivot: bring the heaviest remaining column to position j.
        p = j + int(np.argmax(norms[j:]))
        if p != j:
            A[:, [j, p]] = A[:, [p, j]]
            piv[[j, p]] = piv[[p, j]]
            norms[[j, p]] = norms[[p, j]]
            ref_norms[[j, p]] = ref_norms[[p, j]]
        if norms[j] == 0.0:
            break
        v, tau, beta = house(A[j:, j])
        if j + 1 < n:
            apply_reflector(v, tau, A[j:, j + 1 :])
        A[j, j] = beta
        A[j + 1 :, j] = 0.0
        # Accumulate Q explicitly: Q <- Q H_j (small-matrix usage).
        Qsub = Q[:, j:]
        w = Qsub @ v
        Q[:, j:] = Qsub - tau * np.outer(w, v)
        # Downdate the running column norms (Hammarling).
        if j + 1 < n:
            row = A[j, j + 1 :]
            with np.errstate(invalid="ignore"):
                t = 1.0 - (np.abs(row) / np.where(norms[j + 1 :] == 0, 1.0, norms[j + 1 :])) ** 2
            t = np.maximum(t, 0.0)
            new = norms[j + 1 :] * np.sqrt(t)
            # Recompute columns whose downdated norm lost too much accuracy.
            with np.errstate(divide="ignore", invalid="ignore"):
                unsafe = t * (norms[j + 1 :] / np.where(ref_norms[j + 1 :] == 0, 1.0, ref_norms[j + 1 :])) ** 2 <= 100.0 * eps
            if np.any(unsafe):
                idx = np.nonzero(unsafe)[0] + j + 1
                new_idx = np.linalg.norm(A[j + 1 :, idx], axis=0)
                new[idx - (j + 1)] = new_idx
                ref_norms[idx] = new_idx
            norms[j + 1 :] = new
    R = np.triu(A[:k, :])
    return PivotedQR(Q=Q[:, :k], R=R, piv=piv)


def numerical_rank(A: np.ndarray, rtol: float | None = None) -> int:
    """Numerical rank via column-pivoted QR."""
    return qr_pivoted(A).rank(rtol=rtol)
