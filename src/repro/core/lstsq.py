"""Linear least squares via QR — the intro's ubiquitous application.

"Least squares matrices may have thousands of rows representing
observations, and only a few tens or hundreds of columns representing the
number of parameters" (Section I) — i.e. exactly the tall-skinny case
TSQR/CAQR accelerate.  ``min ||A x - b||`` is solved as
``R x = (Q^T b)[:n]`` using the implicit Q, so the explicit Q is never
formed.
"""

from __future__ import annotations

import numpy as np

from .caqr import caqr
from .triangular import solve_upper
from .tsqr import tsqr

__all__ = ["lstsq_tsqr", "lstsq_caqr", "residual_norm"]


def _solve_from_factors(factors, b: np.ndarray) -> np.ndarray:
    m, n = factors.m, factors.n
    if m < n:
        raise ValueError("least squares solver requires m >= n")
    b = np.asarray(b, dtype=float)
    squeeze = b.ndim == 1
    B = b.reshape(m, -1).astype(float, copy=True)
    factors.apply_qt(B)
    X = solve_upper(factors.R[:n, :n], B[:n])
    return X.ravel() if squeeze else X


def lstsq_tsqr(A: np.ndarray, b: np.ndarray, block_rows: int = 64, tree_shape: str = "quad") -> np.ndarray:
    """Solve ``min ||A x - b||_2`` using a TSQR factorization of A."""
    return _solve_from_factors(tsqr(A, block_rows=block_rows, tree_shape=tree_shape), b)


def lstsq_caqr(
    A: np.ndarray,
    b: np.ndarray,
    panel_width: int = 16,
    block_rows: int = 64,
    tree_shape: str = "quad",
) -> np.ndarray:
    """Solve ``min ||A x - b||_2`` using a CAQR factorization of A."""
    f = caqr(A, panel_width=panel_width, block_rows=block_rows, tree_shape=tree_shape)
    return _solve_from_factors(f, b)


def residual_norm(A: np.ndarray, x: np.ndarray, b: np.ndarray) -> float:
    """``||A x - b||_2`` (column-wise Frobenius for multiple right-hand sides)."""
    return float(np.linalg.norm(np.asarray(A) @ x - np.asarray(b)))
